"""CALM decision policies (paper Section IV-C).

Every policy implements ``decide(pc, addr) -> bool`` (perform CALM?) and
``observe(pc, addr, llc_hit)`` called once the LLC outcome is known, plus
shared telemetry via :class:`~repro.calm.stats.CalmStats`.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.calm.mapi import MapIPredictor
from repro.calm.stats import CalmStats


class CalmPolicy:
    """Base policy: never CALM; subclasses override :meth:`decide`."""

    name = "base"

    def __init__(self) -> None:
        self.stats = CalmStats()
        # Decision counters (observability): how many decide() calls went
        # CALM, and — for regulated policies — why the rest were suppressed.
        self.n_go = 0
        self.n_suppress_cap = 0
        self.n_suppress_prob = 0

    def decide(self, pc: int, addr: int) -> bool:
        raise NotImplementedError

    def observe(self, pc: int, addr: int, llc_hit: bool, was_calm: bool) -> None:
        """Record the LLC outcome for telemetry and (optionally) training."""
        self.stats.record(was_calm, llc_hit)

    def reset_stats(self) -> None:
        self.stats.reset()
        self.n_go = 0
        self.n_suppress_cap = 0
        self.n_suppress_prob = 0


class NeverCalm(CalmPolicy):
    """Serial LLC-then-memory access (the conventional hierarchy)."""

    name = "never"

    def decide(self, pc: int, addr: int) -> bool:
        return False


class AlwaysCalm(CalmPolicy):
    """Every L2 miss probes memory concurrently (upper bound on traffic)."""

    name = "always"

    def decide(self, pc: int, addr: int) -> bool:
        return True


class CalmR(CalmPolicy):
    """Bandwidth-regulated CALM (the paper's ``CALM_R``, default R = 70%).

    Epoch counters estimate the chip's memory bandwidth demand with the LLC
    filtering (``bw_filtered``: L2 misses that also miss LLC) and without
    (``bw_unfiltered``: all L2 misses). If the filtered demand already
    exceeds ``R x bw_max``, CALM is suppressed; otherwise an L2 miss goes
    CALM with probability ``min(1, (R - bw_filtered) / bw_unfiltered)``.

    Parameters
    ----------
    r_fraction:
        Bandwidth cap as a fraction of peak (0.7 for CALM_70%).
    peak_bandwidth_gbps:
        System memory read bandwidth ceiling (set by the system builder).
    epoch_ns:
        Estimation epoch; rates from the previous epoch drive decisions.
    now_fn:
        The simulation clock (e.g. ``lambda: sim.now``). Required before
        the first :meth:`decide`: without a clock the epoch never rolls,
        ``bw_unfiltered`` stays 0, and the policy silently degenerates to
        :class:`AlwaysCalm` — so an unwired policy raises instead.
    """

    def __init__(
        self,
        r_fraction: float = 0.7,
        peak_bandwidth_gbps: float = 38.4,
        epoch_ns: float = 2000.0,
        now_fn: Optional[Callable[[], float]] = None,
        seed: int = 42,
    ) -> None:
        super().__init__()
        if not 0.0 < r_fraction <= 1.0:
            raise ValueError("r_fraction must be in (0, 1]")
        self.name = f"calm_{int(round(r_fraction * 100))}"
        self.r_fraction = r_fraction
        self.peak_bandwidth_gbps = peak_bandwidth_gbps
        self.epoch_ns = epoch_ns
        self.now_fn = now_fn
        self._rng = random.Random(seed)
        self._epoch_start = 0.0
        self._l2_misses_epoch = 0
        self._llc_misses_epoch = 0
        # Previous-epoch rate estimates (GB/s).
        self.bw_unfiltered = 0.0
        self.bw_filtered = 0.0

    def _roll_epoch(self, now: float) -> None:
        elapsed = now - self._epoch_start
        if elapsed < self.epoch_ns:
            return
        self.bw_unfiltered = self._l2_misses_epoch * 64.0 / elapsed
        self.bw_filtered = self._llc_misses_epoch * 64.0 / elapsed
        self._epoch_start = now
        self._l2_misses_epoch = 0
        self._llc_misses_epoch = 0

    def decide(self, pc: int, addr: int) -> bool:
        if self.now_fn is None:
            raise RuntimeError(
                "CalmR.decide() without a wired clock: pass now_fn (e.g. "
                "lambda: sim.now) to CalmR or make_calm_policy. An unwired "
                "clock never rolls the estimation epoch, so the policy would "
                "silently degenerate to AlwaysCalm.")
        now = self.now_fn()
        self._roll_epoch(now)
        self._l2_misses_epoch += 1
        cap = self.r_fraction * self.peak_bandwidth_gbps
        if self.bw_filtered >= cap:
            self.n_suppress_cap += 1
            return False
        if self.bw_unfiltered <= 0.0:
            self.n_go += 1
            return True  # no estimate yet: bandwidth headroom is certain
        p = min(1.0, (cap - self.bw_filtered) / self.bw_unfiltered)
        if self._rng.random() < p:
            self.n_go += 1
            return True
        self.n_suppress_prob += 1
        return False

    def observe(self, pc: int, addr: int, llc_hit: bool, was_calm: bool) -> None:
        super().observe(pc, addr, llc_hit, was_calm)
        if not llc_hit:
            self._llc_misses_epoch += 1


class MapICalm(CalmPolicy):
    """CALM driven by the MAP-I LLC hit/miss predictor."""

    name = "mapi"

    def __init__(self, table_bits: int = 10) -> None:
        super().__init__()
        self.predictor = MapIPredictor(table_bits=table_bits)

    def decide(self, pc: int, addr: int) -> bool:
        return self.predictor.predict_miss(pc)

    def observe(self, pc: int, addr: int, llc_hit: bool, was_calm: bool) -> None:
        super().observe(pc, addr, llc_hit, was_calm)
        self.predictor.train(pc, not llc_hit)


class IdealPredictor(CalmPolicy):
    """Oracle CALM: probes the actual LLC state at decision time.

    The system builder wires ``probe_fn(addr) -> bool`` (present?) after the
    LLC slices exist.
    """

    name = "ideal"

    def __init__(self, probe_fn: Optional[Callable[[int], bool]] = None) -> None:
        super().__init__()
        self.probe_fn = probe_fn

    def decide(self, pc: int, addr: int) -> bool:
        if self.probe_fn is None:
            raise RuntimeError("IdealPredictor.probe_fn is not wired")
        return not self.probe_fn(addr)


def make_calm_policy(spec: str, peak_bandwidth_gbps: float = 38.4,
                     now_fn: Optional[Callable[[], float]] = None) -> CalmPolicy:
    """Build a policy from a spec string.

    Specs: ``never`` | ``always`` | ``mapi`` | ``ideal`` | ``calm_50`` /
    ``calm_60`` / ``calm_70`` / ... (any ``calm_<percent>``).

    ``calm_*`` policies need ``now_fn`` wired to the simulation clock
    before their first ``decide`` (see :class:`CalmR`).
    """
    if spec == "never":
        return NeverCalm()
    if spec == "always":
        return AlwaysCalm()
    if spec == "mapi":
        return MapICalm()
    if spec == "ideal":
        return IdealPredictor()
    if spec.startswith("calm_"):
        pct = float(spec.split("_", 1)[1])
        return CalmR(pct / 100.0, peak_bandwidth_gbps, now_fn=now_fn)
    raise ValueError(f"unknown CALM policy spec {spec!r}")
