"""Concurrent Access of LLC and Memory (CALM) — Section IV-C.

On an L2 miss, a CALM access looks up the LLC and memory *in parallel*,
removing the LLC (and its NoC legs) from the critical path of LLC-missing
requests at the cost of memory bandwidth for LLC-hitting ones. The L2
always waits for the LLC response to preserve coherence (the memory copy
may be stale if the line is on chip).

Policies decide per L2 miss whether to go CALM:

- :class:`CalmR` — the paper's default: regulate CALM so estimated memory
  bandwidth stays below ``R`` % of peak (``CALM_70%`` is COAXIAL's default);
- :class:`MapIPredictor` — PC-indexed LLC hit/miss predictor (MAP-I);
- :class:`IdealPredictor` — oracle that probes the LLC;
- :class:`NeverCalm` / :class:`AlwaysCalm` — bounds for sensitivity studies.
"""

from repro.calm.policy import (
    CalmPolicy, NeverCalm, AlwaysCalm, CalmR, IdealPredictor, make_calm_policy,
)
from repro.calm.mapi import MapIPredictor
from repro.calm.stats import CalmStats

__all__ = [
    "CalmPolicy", "NeverCalm", "AlwaysCalm", "CalmR",
    "MapIPredictor", "IdealPredictor", "CalmStats", "make_calm_policy",
]
