"""CALM decision telemetry (paper Figure 7b).

Decision outcomes, in the paper's terminology:

- *false positive*: CALM performed but the LLC hit — the memory fetch was
  wasted bandwidth;
- *false negative*: CALM skipped but the LLC missed — the access was
  serialized and paid the LLC latency for nothing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CalmStats:
    """Aggregated CALM decision counters."""

    calm_llc_hit: int = 0      # false positives
    calm_llc_miss: int = 0     # true positives
    serial_llc_hit: int = 0    # true negatives
    serial_llc_miss: int = 0   # false negatives

    def record(self, calm: bool, llc_hit: bool) -> None:
        if calm and llc_hit:
            self.calm_llc_hit += 1
        elif calm:
            self.calm_llc_miss += 1
        elif llc_hit:
            self.serial_llc_hit += 1
        else:
            self.serial_llc_miss += 1

    @property
    def total(self) -> int:
        return (self.calm_llc_hit + self.calm_llc_miss
                + self.serial_llc_hit + self.serial_llc_miss)

    @property
    def llc_misses(self) -> int:
        return self.calm_llc_miss + self.serial_llc_miss

    @property
    def false_positive_rate(self) -> float:
        """False positives as a fraction of memory accesses (paper metric)."""
        mem_accesses = self.llc_misses + self.calm_llc_hit
        return self.calm_llc_hit / mem_accesses if mem_accesses else 0.0

    @property
    def false_negative_rate(self) -> float:
        """False negatives as a fraction of all LLC misses (paper metric)."""
        return self.serial_llc_miss / self.llc_misses if self.llc_misses else 0.0

    def reset(self) -> None:
        self.calm_llc_hit = self.calm_llc_miss = 0
        self.serial_llc_hit = self.serial_llc_miss = 0
