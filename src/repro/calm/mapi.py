"""MAP-I: PC-indexed LLC hit/miss predictor (Qureshi & Loh, MICRO'12).

A table of saturating counters indexed by a hash of the missing load's PC.
The counter increments on an observed LLC miss and decrements on a hit;
the MSB predicts the next outcome for that PC. The paper uses MAP-I as the
predictive alternative to bandwidth-regulated CALM_R.
"""

from __future__ import annotations


class MapIPredictor:
    """Miss-Address-Predictor, Instruction-based."""

    def __init__(self, table_bits: int = 10, counter_bits: int = 3) -> None:
        if table_bits < 1 or counter_bits < 1:
            raise ValueError("table_bits and counter_bits must be >= 1")
        self.size = 1 << table_bits
        self.max_val = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        # Initialize weakly towards "miss": bandwidth-rich systems prefer
        # false positives over false negatives (paper Section VI-B).
        self.table = [self.threshold] * self.size
        self.predictions = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> 11) ^ (pc >> 21)) & (self.size - 1)

    def predict_miss(self, pc: int) -> bool:
        """Predict whether a load at ``pc`` will miss the LLC."""
        self.predictions += 1
        return self.table[self._index(pc)] >= self.threshold

    def train(self, pc: int, was_miss: bool) -> None:
        """Update with the observed LLC outcome."""
        i = self._index(pc)
        v = self.table[i]
        predicted_miss = v >= self.threshold
        if predicted_miss == was_miss:
            self.correct += 1
        if was_miss:
            if v < self.max_val:
                self.table[i] = v + 1
        elif v > 0:
            self.table[i] = v - 1

    @property
    def accuracy(self) -> float:
        trained = self.correct
        return trained / self.predictions if self.predictions else 0.0
