"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import Dict

from repro.engine.kernel import Simulator


class Component:
    """A named component bound to a simulator, with a counter-style stats dict.

    Subclasses bump integer/float counters in :attr:`stats`; aggregation code
    reads them after :meth:`Simulator.run` finishes.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats: Dict[str, float] = {}

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount`` (creating it at 0)."""
        self.stats[key] = self.stats.get(key, 0.0) + amount

    def reset_stats(self) -> None:
        """Zero all counters (used at the warmup/measurement boundary)."""
        for key in self.stats:
            self.stats[key] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
