"""The simulation kernel: owns the clock and drains the event queue."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue

#: Dispatch-loop implementations a :class:`Simulator` can run.
KERNEL_MODES = ("fast", "reference", "batch")


class Simulator:
    """Discrete-event simulator.

    All components share one :class:`Simulator`. Time is float nanoseconds.

    ``schedule``/``schedule_at`` are the hot path: they push plain
    ``(time, seq, fn, args)`` tuples and return ``None``. Callers that need
    to cancel a pending event use ``schedule_cancellable`` /
    ``schedule_at_cancellable``, which return an :class:`Event` handle.

    ``kernel`` selects the dispatch loop: ``"fast"`` (default) pops heap
    tuples inline, ``"reference"`` goes through the :class:`EventQueue`
    ``peek_time``/``pop`` API one event at a time, and ``"batch"`` drains
    all events sharing the current timestamp in one batch — same-cycle
    work scheduled *from inside* the batch lands in a flat tail list
    instead of churning the heap. All loops must produce bit-identical
    simulations — the fuzzer's differential oracles run every generated
    config through them and compare the full ``SimResult``.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, fired.append, "a")
    >>> sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, kernel: str = "fast") -> None:
        if kernel not in KERNEL_MODES:
            raise ValueError(f"kernel must be one of {KERNEL_MODES}, got {kernel!r}")
        self.now: float = 0.0
        self.queue = EventQueue()
        self.events_fired: int = 0
        self.kernel = kernel
        #: Batch-kernel landing zone. While :meth:`run_batch` is draining
        #: the batch at ``_batch_time``, every schedule targeting exactly
        #: that timestamp appends here (in seq order) instead of paying a
        #: heap push + pop; ``None`` whenever no batch is being drained.
        self._batch_tail = None
        self._batch_time = 0.0
        #: Optional :class:`repro.obs.KernelProfiler`. When set, the fast
        #: loop is swapped for :meth:`run_profiled`, which times every
        #: callback; when ``None`` (the default) the dispatch loops are
        #: untouched and pay nothing.
        self.profiler = None
        #: Optional per-dispatch observer ``hook(fn)`` (repro.tracing's
        #: kernel mode). Called once per *fired* event, after its callback
        #: ran — never for cancelled entries — and honored identically by
        #: all dispatch loops, so hooked runs stay bit-identical. ``None``
        #: (the default) costs the fast loop nothing: :meth:`run` swaps in
        #: :meth:`run_hooked` only when a hook is installed.
        self.event_hook = None

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined EventQueue.push_fast: this is the hottest call in the
        # simulator, worth saving the extra frame.
        q = self.queue
        time = self.now + delay
        tail = self._batch_tail
        if tail is not None and time == self._batch_time:
            tail.append((time, q._seq, fn, args))
        else:
            heapq.heappush(q._heap, (time, q._seq, fn, args))
        q._seq += 1
        q._live += 1

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        q = self.queue
        tail = self._batch_tail
        if tail is not None and time == self._batch_time:
            tail.append((time, q._seq, fn, args))
        else:
            heapq.heappush(q._heap, (time, q._seq, fn, args))
        q._seq += 1
        q._live += 1

    def schedule_cancellable(self, delay: float, fn: Callable[..., Any],
                             *args: Any) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        tail = self._batch_tail
        if tail is not None and time == self._batch_time:
            return self._push_tail(tail, time, fn, args)
        return self.queue.push(time, fn, *args)

    def schedule_at_cancellable(self, time: float, fn: Callable[..., Any],
                                *args: Any) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        tail = self._batch_tail
        if tail is not None and time == self._batch_time:
            return self._push_tail(tail, time, fn, args)
        return self.queue.push(time, fn, *args)

    def _push_tail(self, tail: list, time: float, fn: Callable[..., Any],
                   args: tuple) -> Event:
        """Append a cancellable entry to the active batch tail.

        Cancellation works exactly as for heap entries: the handle records
        its seq in the queue's cancelled set, and the batch loop skips (and
        discards) cancelled seqs when it reaches them.
        """
        q = self.queue
        seq = q._seq
        q._seq = seq + 1
        q._live += 1
        tail.append((time, seq, fn, args))
        return Event(time, seq, fn, args, q)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time. The clock
            is left at ``until`` (or the last event time if earlier).
        max_events:
            Safety valve: stop after this many events.

        The fast loop pops heap tuples directly instead of going through
        ``peek_time()`` + ``pop()``, which would scan past cancelled entries
        twice per event; ``kernel="reference"`` keeps the un-inlined loop
        as the differential-testing baseline.
        """
        if self.kernel == "reference":
            self.run_reference(until=until, max_events=max_events)
            return
        if self.profiler is not None:
            # Profiling swaps in the per-event instrumented loop for every
            # non-reference kernel; it is semantically identical, only the
            # wall-clock observation differs.
            self.run_profiled(until=until, max_events=max_events)
            return
        if self.kernel == "batch":
            self.run_batch(until=until, max_events=max_events)
            return
        if self.event_hook is not None:
            self.run_hooked(until=until, max_events=max_events)
            return
        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        fired = 0
        if max_events is None:
            # Common case (every simulate() call): no event cap, so the
            # loop body carries only the until check.
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                time, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                queue._live -= 1
                self.now = time
                fn(*args)
                fired += 1
        else:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                time, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                queue._live -= 1
                self.now = time
                fn(*args)
                fired += 1
                if fired >= max_events:
                    break
        self.events_fired += fired

    def run_hooked(self, until: Optional[float] = None,
                   max_events: Optional[int] = None) -> None:
        """The fast loop with :attr:`event_hook` called after each dispatch.

        Bit-identical simulation semantics to :meth:`run` — same
        ``(time, seq)`` ordering, ``until`` clock handling, and
        cancellation — plus one ``hook(fn)`` call per fired event. The
        hook is an observer (repro.tracing's deterministic dispatch
        counter); it must not schedule.
        """
        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        hook = self.event_hook
        fired = 0
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                break
            time, seq, fn, args = heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            queue._live -= 1
            self.now = time
            fn(*args)
            hook(fn)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.events_fired += fired

    def run_batch(self, until: Optional[float] = None,
                  max_events: Optional[int] = None) -> None:
        """Batched dispatch loop: drain all events at one timestamp together.

        Bit-identical to :meth:`run` — identical global ``(time, seq)``
        firing order, ``until`` clock handling, cancellation, and
        ``max_events`` semantics — but structured around timestamps:

        - every heap entry at the head timestamp is popped into a flat
          batch list up front (equal-time heap pops come out in seq order,
          so the list is already ordered);
        - while the batch is being fired, any schedule targeting exactly
          the batch timestamp appends to a tail list instead of the heap.
          Tail seqs are strictly greater than everything already popped,
          so firing batch-then-tail (the tail may keep growing) preserves
          the global order while skipping a heap push + pop per
          same-cycle event;
        - cancelled entries are skipped at fire time without advancing the
          clock, exactly as the per-event loops do, which is what keeps
          obs on/off bit-identical (a cancelled sampler tick after the
          last real event must not move ``now``).
        """
        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        heappush = heapq.heappush
        hook = self.event_hook
        fired = 0
        tail: list = []
        self._batch_tail = tail
        try:
            while heap:
                t0 = heap[0][0]
                if until is not None and t0 > until:
                    self.now = until
                    break
                self._batch_time = t0
                # Phase 1: drain heap entries at t0. They all predate (have
                # lower seqs than) anything the fired callbacks schedule at
                # t0, which lands in `tail`, never back on the heap.
                while True:
                    time, seq, fn, args = heappop(heap)
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                    else:
                        queue._live -= 1
                        self.now = t0
                        fn(*args)
                        if hook is not None:
                            hook(fn)
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            for e in tail:
                                heappush(heap, e)
                            self.events_fired += fired
                            return
                    if not heap or heap[0][0] != t0:
                        break
                # Phase 2: same-cycle follow-on work, in append (= seq)
                # order; entries fired here may append more.
                if tail:
                    idx = 0
                    while idx < len(tail):
                        e = tail[idx]
                        idx += 1
                        seq = e[1]
                        if cancelled and seq in cancelled:
                            cancelled.discard(seq)
                            continue
                        queue._live -= 1
                        self.now = t0
                        e[2](*e[3])
                        if hook is not None:
                            hook(e[2])
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            # Unfired same-time entries go back on the heap
                            # so a later run() resumes exactly here.
                            for e in tail[idx:]:
                                heappush(heap, e)
                            self.events_fired += fired
                            return
                    del tail[:]
        finally:
            self._batch_tail = None
        self.events_fired += fired

    def run_profiled(self, until: Optional[float] = None,
                     max_events: Optional[int] = None) -> None:
        """The fast loop with per-event timing around each callback.

        Bit-identical simulation semantics to :meth:`run` — same
        ``(time, seq)`` ordering, ``until`` clock handling, and
        cancellation — with each dispatched callback timed via
        ``perf_counter`` and attributed to its ``__qualname__`` in
        ``self.profiler``. Only wall-clock observation differs, so a
        profiled run produces the same :class:`SimResult` as an
        unprofiled one.
        """
        from time import perf_counter

        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        data = self.profiler.data
        hook = self.event_hook
        fired = 0
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                break
            time, seq, fn, args = heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            queue._live -= 1
            self.now = time
            t0 = perf_counter()
            fn(*args)
            dt = perf_counter() - t0
            key = getattr(fn, "__qualname__", None) or repr(fn)
            ent = data.get(key)
            if ent is None:
                data[key] = [1, dt]
            else:
                ent[0] += 1
                ent[1] += dt
            if hook is not None:
                hook(fn)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.events_fired += fired

    def run_reference(self, until: Optional[float] = None,
                      max_events: Optional[int] = None) -> None:
        """Reference dispatch loop: one :class:`EventQueue` call per step.

        Semantically identical to :meth:`run` — same (time, seq) ordering,
        same ``until`` clock semantics, same cancellation handling — but
        built from the queue's public ``peek_time``/``pop`` API with a
        per-event :class:`Event` allocation. It is the retained baseline the
        fuzzer's differential oracle compares the inlined fast path against;
        do not "optimize" it.
        """
        queue = self.queue
        hook = self.event_hook
        fired = 0
        while True:
            t = queue.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                self.now = until
                break
            ev = queue.pop()
            assert ev is not None  # peek_time said there was one
            self.now = ev.time
            ev.fn(*ev.args)
            if hook is not None:
                hook(ev.fn)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.events_fired += fired

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return len(self.queue)
