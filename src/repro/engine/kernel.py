"""The simulation kernel: owns the clock and drains the event queue."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue


class Simulator:
    """Discrete-event simulator.

    All components share one :class:`Simulator`. Time is float nanoseconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.events_fired: int = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.queue.push(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, fn, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time. The clock
            is left at ``until`` (or the last event time if earlier).
        max_events:
            Safety valve: stop after this many events.
        """
        fired = 0
        while True:
            t = self.queue.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                self.now = until
                break
            ev = self.queue.pop()
            assert ev is not None
            self.now = ev.time
            ev.fn(*ev.args)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.events_fired += fired

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return len(self.queue)
