"""The simulation kernel: owns the clock and drains the event queue."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue

#: Dispatch-loop implementations a :class:`Simulator` can run.
KERNEL_MODES = ("fast", "reference")


class Simulator:
    """Discrete-event simulator.

    All components share one :class:`Simulator`. Time is float nanoseconds.

    ``schedule``/``schedule_at`` are the hot path: they push plain
    ``(time, seq, fn, args)`` tuples and return ``None``. Callers that need
    to cancel a pending event use ``schedule_cancellable`` /
    ``schedule_at_cancellable``, which return an :class:`Event` handle.

    ``kernel`` selects the dispatch loop: ``"fast"`` (default) pops heap
    tuples inline, ``"reference"`` goes through the :class:`EventQueue`
    ``peek_time``/``pop`` API one event at a time. Both must produce
    bit-identical simulations — the fuzzer's differential oracle runs every
    generated config through both and compares the full ``SimResult``.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, fired.append, "a")
    >>> sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, kernel: str = "fast") -> None:
        if kernel not in KERNEL_MODES:
            raise ValueError(f"kernel must be one of {KERNEL_MODES}, got {kernel!r}")
        self.now: float = 0.0
        self.queue = EventQueue()
        self.events_fired: int = 0
        self.kernel = kernel
        #: Optional :class:`repro.obs.KernelProfiler`. When set, the fast
        #: loop is swapped for :meth:`run_profiled`, which times every
        #: callback; when ``None`` (the default) the dispatch loops are
        #: untouched and pay nothing.
        self.profiler = None

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined EventQueue.push_fast: this is the hottest call in the
        # simulator, worth saving the extra frame.
        q = self.queue
        heapq.heappush(q._heap, (self.now + delay, q._seq, fn, args))
        q._seq += 1
        q._live += 1

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        q = self.queue
        heapq.heappush(q._heap, (time, q._seq, fn, args))
        q._seq += 1
        q._live += 1

    def schedule_cancellable(self, delay: float, fn: Callable[..., Any],
                             *args: Any) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.queue.push(self.now + delay, fn, *args)

    def schedule_at_cancellable(self, time: float, fn: Callable[..., Any],
                                *args: Any) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, fn, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time. The clock
            is left at ``until`` (or the last event time if earlier).
        max_events:
            Safety valve: stop after this many events.

        The fast loop pops heap tuples directly instead of going through
        ``peek_time()`` + ``pop()``, which would scan past cancelled entries
        twice per event; ``kernel="reference"`` keeps the un-inlined loop
        as the differential-testing baseline.
        """
        if self.kernel == "reference":
            self.run_reference(until=until, max_events=max_events)
            return
        if self.profiler is not None:
            self.run_profiled(until=until, max_events=max_events)
            return
        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        fired = 0
        if max_events is None:
            # Common case (every simulate() call): no event cap, so the
            # loop body carries only the until check.
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                time, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                queue._live -= 1
                self.now = time
                fn(*args)
                fired += 1
        else:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                time, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                queue._live -= 1
                self.now = time
                fn(*args)
                fired += 1
                if fired >= max_events:
                    break
        self.events_fired += fired

    def run_profiled(self, until: Optional[float] = None,
                     max_events: Optional[int] = None) -> None:
        """The fast loop with per-event timing around each callback.

        Bit-identical simulation semantics to :meth:`run` — same
        ``(time, seq)`` ordering, ``until`` clock handling, and
        cancellation — with each dispatched callback timed via
        ``perf_counter`` and attributed to its ``__qualname__`` in
        ``self.profiler``. Only wall-clock observation differs, so a
        profiled run produces the same :class:`SimResult` as an
        unprofiled one.
        """
        from time import perf_counter

        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        data = self.profiler.data
        fired = 0
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                break
            time, seq, fn, args = heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            queue._live -= 1
            self.now = time
            t0 = perf_counter()
            fn(*args)
            dt = perf_counter() - t0
            key = getattr(fn, "__qualname__", None) or repr(fn)
            ent = data.get(key)
            if ent is None:
                data[key] = [1, dt]
            else:
                ent[0] += 1
                ent[1] += dt
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.events_fired += fired

    def run_reference(self, until: Optional[float] = None,
                      max_events: Optional[int] = None) -> None:
        """Reference dispatch loop: one :class:`EventQueue` call per step.

        Semantically identical to :meth:`run` — same (time, seq) ordering,
        same ``until`` clock semantics, same cancellation handling — but
        built from the queue's public ``peek_time``/``pop`` API with a
        per-event :class:`Event` allocation. It is the retained baseline the
        fuzzer's differential oracle compares the inlined fast path against;
        do not "optimize" it.
        """
        queue = self.queue
        fired = 0
        while True:
            t = queue.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                self.now = until
                break
            ev = queue.pop()
            assert ev is not None  # peek_time said there was one
            self.now = ev.time
            ev.fn(*ev.args)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self.events_fired += fired

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return len(self.queue)
