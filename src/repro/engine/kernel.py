"""The simulation kernel: owns the clock and drains the event queue."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue


class Simulator:
    """Discrete-event simulator.

    All components share one :class:`Simulator`. Time is float nanoseconds.

    ``schedule``/``schedule_at`` are the hot path: they push plain
    ``(time, seq, fn, args)`` tuples and return ``None``. Callers that need
    to cancel a pending event use ``schedule_cancellable`` /
    ``schedule_at_cancellable``, which return an :class:`Event` handle.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, fired.append, "a")
    >>> sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.events_fired: int = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined EventQueue.push_fast: this is the hottest call in the
        # simulator, worth saving the extra frame.
        q = self.queue
        heapq.heappush(q._heap, (self.now + delay, q._seq, fn, args))
        q._seq += 1
        q._live += 1

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        q = self.queue
        heapq.heappush(q._heap, (time, q._seq, fn, args))
        q._seq += 1
        q._live += 1

    def schedule_cancellable(self, delay: float, fn: Callable[..., Any],
                             *args: Any) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.queue.push(self.now + delay, fn, *args)

    def schedule_at_cancellable(self, time: float, fn: Callable[..., Any],
                                *args: Any) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, fn, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time. The clock
            is left at ``until`` (or the last event time if earlier).
        max_events:
            Safety valve: stop after this many events.

        The loop pops heap tuples directly instead of going through
        ``peek_time()`` + ``pop()``, which would scan past cancelled entries
        twice per event.
        """
        queue = self.queue
        heap = queue._heap
        cancelled = queue._cancelled
        heappop = heapq.heappop
        fired = 0
        if max_events is None:
            # Common case (every simulate() call): no event cap, so the
            # loop body carries only the until check.
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                time, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                queue._live -= 1
                self.now = time
                fn(*args)
                fired += 1
        else:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                time, seq, fn, args = heappop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                queue._live -= 1
                self.now = time
                fn(*args)
                fired += 1
                if fired >= max_events:
                    break
        self.events_fired += fired

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return len(self.queue)
