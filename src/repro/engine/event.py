"""Event primitives for the discrete-event simulation kernel.

Events are callbacks scheduled at absolute simulation times. A monotonically
increasing sequence number breaks ties so that two events scheduled for the
same instant fire in insertion order, which keeps simulations deterministic
and independent of heap internals.

The queue stores plain ``(time, seq, fn, args)`` tuples — no per-event
object allocation on the hot scheduling path. Cancellable :class:`Event`
handles exist only for callers that explicitly keep the return value of
:meth:`EventQueue.push`; cancellation is recorded in a side set of sequence
numbers that the pop loop consults (the set is empty in the common case, so
the check is a single truthiness test).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Set, Tuple

#: Heap entry layout: (time, seq, fn, args).
Entry = Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]


class Event:
    """A cancellable handle to a scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time (ns) at which the callback fires.
    seq:
        Tie-breaking sequence number assigned by the queue.
    fn:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``fn``.
    queue:
        Owning :class:`EventQueue` (``None`` for handles reconstructed by
        ``pop``, which are already off the heap and cannot be cancelled).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: Tuple[Any, ...], queue: Optional["EventQueue"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._cancel(self.seq)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} seq={self.seq}{state} fn={getattr(self.fn, '__name__', self.fn)}>"


class EventQueue:
    """Priority queue of scheduled callbacks ordered by (time, seq).

    ``push`` returns a cancellable :class:`Event` handle; ``push_fast``
    skips handle allocation entirely and is what the simulator's hot
    scheduling path uses. ``__len__`` is O(1): a live-event counter is
    maintained incrementally across push/pop/cancel.
    """

    __slots__ = ("_heap", "_seq", "_cancelled", "_live")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self._seq = 0
        self._cancelled: Set[int] = set()
        self._live = 0

    def push(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` and return a handle."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, fn, args))
        self._live += 1
        return Event(time, seq, fn, args, self)

    def push_fast(self, time: float, fn: Callable[..., Any],
                  args: Tuple[Any, ...]) -> None:
        """Schedule without allocating a handle (hot path; not cancellable)."""
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1
        self._live += 1

    def _cancel(self, seq: int) -> None:
        """Record a cancellation (called by :meth:`Event.cancel` only)."""
        self._cancelled.add(seq)
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``.

        The returned handle is already off the heap, so cancelling it is a
        no-op; it exists to carry ``time``/``fn``/``args`` to the caller.
        """
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time, seq, fn, args = heapq.heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._live -= 1
            return Event(time, seq, fn, args, None)
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, or ``None``."""
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][1] in cancelled:
            cancelled.discard(heapq.heappop(heap)[1])
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def clear(self) -> None:
        """Drop every pending event (used by tests and re-runs)."""
        self._heap.clear()
        self._cancelled.clear()
        self._live = 0
