"""Event primitives for the discrete-event simulation kernel.

Events are callbacks scheduled at absolute simulation times. A monotonically
increasing sequence number breaks ties so that two events scheduled for the
same instant fire in insertion order, which keeps simulations deterministic
and independent of heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time (ns) at which the callback fires.
    seq:
        Tie-breaking sequence number assigned by the queue.
    fn:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``fn``.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} seq={self.seq}{state} fn={getattr(self.fn, '__name__', self.fn)}>"


class EventQueue:
    """Priority queue of :class:`Event` objects ordered by (time, seq)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def push(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` and return the event."""
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
