"""Discrete-event simulation engine underpinning every simulated subsystem.

The engine is deliberately small: an event queue keyed by (time, sequence)
and a :class:`~repro.engine.kernel.Simulator` that drains it. All simulated
time is expressed in **nanoseconds** as floats; insertion sequence numbers
guarantee deterministic FIFO ordering among same-timestamp events.
"""

from repro.engine.event import Event, EventQueue
from repro.engine.kernel import Simulator
from repro.engine.component import Component

__all__ = ["Event", "EventQueue", "Simulator", "Component"]
