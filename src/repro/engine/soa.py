"""Struct-of-arrays helpers behind the batched kernel and fast warmup.

Everything here turns per-element Python attribute/arithmetic churn into
flat column operations: whole trace columns are lowered to plain Python
lists in one vectorized pass, and derived columns (line addresses,
instruction numbers) are computed with array ops instead of per-op
interpreter work.

numpy is optional. Every helper has a pure-Python fallback producing
bit-identical values, so the package imports — and every kernel mode
runs — without numpy; the fallback only costs speed. ``HAVE_NUMPY``
reports which path is active (surfaced in docs/performance.md).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    _np = None

#: True when the vectorized (numpy) implementations are active.
HAVE_NUMPY = _np is not None


def warmup_columns(arr) -> Tuple[List[int], List[bool]]:
    """Lower a trace's access stream to (line-address, is-write) columns.

    The fast functional-warmup replay consumes line addresses (``addr >>
    6``) and boolean write flags; computing both columns in one vectorized
    pass and converting to plain lists once is markedly cheaper than
    shifting/boolifying per op inside the replay loop.
    """
    if _np is not None and isinstance(arr, _np.ndarray):
        lines = (arr["addr"] >> _np.uint64(6)).tolist()
        writes = (arr["is_write"] != 0).tolist()
        return lines, writes
    return ([int(a) >> 6 for a in arr["addr"]],
            [bool(w) for w in arr["is_write"]])


def cumulative_instr_no(gaps: Sequence[int]) -> List[int]:
    """Instruction number of each memory op given per-op non-memory gaps.

    Op ``i`` is instruction ``sum(gaps[:i+1]) + i`` — the running total of
    skipped instructions plus the memory ops themselves. Exact integer
    math either way; the vectorized path is one cumsum.
    """
    if _np is not None and isinstance(gaps, _np.ndarray):
        return (_np.cumsum(gaps.astype(_np.int64) + 1) - 1).tolist()
    out = []
    run = 0
    for g in gaps:
        run += int(g) + 1
        out.append(run - 1)
    return out
