"""Span-trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSONL.

The Perfetto form loads directly into ``ui.perfetto.dev`` (or
``chrome://tracing``): one ``"X"`` (complete) event per request plus one
per child span, grouped per core track, with the trace id and the
component attribution carried in ``otherData``. The JSONL form is one
header object followed by one request row per line — easy to grep/jq.
Both round-trip through :func:`load_trace`, which `repro trace view` /
`repro trace critpath` use, so a trace id minted at ``repro serve``
submit is recoverable from a worker-side export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.exportutil import dispatch_export, ensure_parent

#: ``trace_event`` timestamps are microseconds; simulation time is ns.
_NS_PER_US = 1000.0


def export_perfetto(snapshot: dict, path: Union[str, Path]) -> Path:
    """Write one snapshot as Chrome/Perfetto ``trace_event`` JSON."""
    path = ensure_parent(path)
    events = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
               "args": {"name": "repro-sim"}}]
    cores_seen = set()
    for row in snapshot.get("spans", ()):
        tid = int(row["core"])
        if tid not in cores_seen:
            cores_seen.add(tid)
            events.append({"name": "thread_name", "ph": "M", "pid": 1,
                           "tid": tid, "args": {"name": f"core{tid}"}})
        events.append({
            "name": f"req#{row['req_id']}",
            "cat": "request",
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": row["t_create"] / _NS_PER_US,
            "dur": row["total"] / _NS_PER_US,
            "args": {
                "req_id": row["req_id"],
                "addr": f"{row['addr']:#x}",
                "calm": row["calm"],
                "llc_hit": row["llc_hit"],
            },
        })
        for s in row.get("spans", ()):
            events.append({
                "name": s["name"],
                "cat": s["component"],
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": s["t0"] / _NS_PER_US,
                "dur": (s["t1"] - s["t0"]) / _NS_PER_US,
                "args": {"req_id": row["req_id"]},
            })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "schema": snapshot.get("schema"),
            "mode": snapshot.get("mode"),
            "trace_id": snapshot.get("trace_id"),
            "requests": snapshot.get("requests"),
            "attribution": snapshot.get("attribution"),
        },
    }
    if "kernel_events" in snapshot:
        doc["otherData"]["kernel_events"] = snapshot["kernel_events"]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
    return path


def export_spans_jsonl(snapshot: dict, path: Union[str, Path]) -> Path:
    """Write one snapshot as JSONL: a header line, then one row per request."""
    path = ensure_parent(path)
    header = {k: snapshot.get(k)
              for k in ("schema", "mode", "trace_id", "requests", "attribution")}
    header["kind"] = "header"
    if "kernel_events" in snapshot:
        header["kernel_events"] = snapshot["kernel_events"]
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for row in snapshot.get("spans", ()):
            obj = dict(row)
            obj["kind"] = "request"
            fh.write(json.dumps(obj, sort_keys=True) + "\n")
    return path


def export_trace(snapshot: dict, path: Union[str, Path],
                 fmt: Optional[str] = None) -> Path:
    """Export by explicit format (``json``/``jsonl``) or by file suffix."""
    return dispatch_export(
        path, fmt,
        {"json": lambda p: export_perfetto(snapshot, p),
         "jsonl": lambda p: export_spans_jsonl(snapshot, p)},
        kind="span trace",
    )


def _rows_from_events(events) -> list:
    """Rebuild span rows from Perfetto ``traceEvents`` (ts back to ns)."""
    rows = {}
    children = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev.get("args") or {}
        rid = args.get("req_id")
        if rid is None:
            continue
        if ev.get("cat") == "request":
            rows[rid] = {
                "req_id": rid,
                "core": ev.get("tid", -1),
                "addr": int(args.get("addr", "0x0"), 16),
                "calm": args.get("calm", False),
                "llc_hit": args.get("llc_hit", False),
                "t_create": ev["ts"] * _NS_PER_US,
                "t_complete": (ev["ts"] + ev["dur"]) * _NS_PER_US,
                "total": ev["dur"] * _NS_PER_US,
                "spans": [],
            }
        else:
            t0 = ev["ts"] * _NS_PER_US
            children.setdefault(rid, []).append({
                "name": ev["name"],
                "component": ev.get("cat", "onchip"),
                "t0": t0,
                "t1": t0 + ev["dur"] * _NS_PER_US,
            })
    for rid, spans in children.items():
        if rid in rows:
            rows[rid]["spans"] = spans
    return list(rows.values())


def load_trace(path: Union[str, Path]) -> dict:
    """Load a Perfetto JSON or span JSONL export back into snapshot form."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    snap = {"schema": None, "mode": None, "trace_id": None,
            "requests": None, "attribution": {}, "spans": []}
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        other = doc.get("otherData") or {}
        for k in ("schema", "mode", "trace_id", "requests", "attribution",
                  "kernel_events"):
            if other.get(k) is not None:
                snap[k] = other[k]
        snap["spans"] = _rows_from_events(doc["traceEvents"])
        return snap
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.pop("kind", None)
        if kind == "header":
            for k, v in obj.items():
                if v is not None:
                    snap[k] = v
        elif kind == "request":
            snap["spans"].append(obj)
        else:
            raise ValueError(
                f"{path} is neither a Perfetto trace_event JSON nor a span "
                f"JSONL export (line without a kind marker)")
    return snap
