"""Causal span tracing for the simulated memory path (see PR docs).

Three tiers: per-request simulation spans (:class:`SpanTracer`,
zero-perturbation), critical-path attribution (:mod:`.critpath`), and
Perfetto/JSONL export with distributed trace-id propagation
(:mod:`.export`). Enable per run with ``simulate(..., tracing="on")``,
``repro run --tracing on``, or ``$REPRO_TRACING``.
"""

from repro.tracing.critpath import (
    ATTRIBUTION_COMPONENTS,
    attribution_table,
    critical_path,
    format_critical_path,
    path_attribution,
    slowest,
)
from repro.tracing.export import (
    export_perfetto,
    export_spans_jsonl,
    export_trace,
    load_trace,
)
from repro.tracing.spans import (
    TRACE_SCHEMA_VERSION,
    TRACING_MODES,
    SpanTracer,
    resolve_tracing_mode,
)

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "TRACE_SCHEMA_VERSION",
    "TRACING_MODES",
    "SpanTracer",
    "attribution_table",
    "critical_path",
    "export_perfetto",
    "export_spans_jsonl",
    "export_trace",
    "format_critical_path",
    "load_trace",
    "path_attribution",
    "resolve_tracing_mode",
    "slowest",
]
