"""Critical-path analysis over completed span rows.

One L2 miss in this model is a (mostly) linear chain — LLC lookup, then
the memory leg (migration wait, CXL TX, MC queue, DRAM service, CXL RX)
— with the CALM join as the only fork. :func:`critical_path` walks one
request's recorded spans in time order and emits the blocking chain
covering ``[t_create, t_complete]``: overlapped portions are charged to
the earlier span, and gaps the tracer has no span for (NoC crossings,
the CALM join wait) are attributed to ``onchip``. MSHR waits happen
before ``t_create`` and are therefore clipped — they delay the miss's
*start*, not its latency.
"""

from __future__ import annotations

from typing import Dict, List

#: Attribution components, in report order.
ATTRIBUTION_COMPONENTS = (
    "onchip", "queuing", "serialization", "service", "migration")


def critical_path(row: dict) -> List[dict]:
    """The blocking chain of one completed request.

    Returns ordered segments ``{"name", "component", "t0", "t1", "dur"}``
    exactly covering ``[t_create, t_complete]``.
    """
    t_start = row["t_create"]
    t_end = row["t_complete"]
    spans = sorted((s for s in row.get("spans", ()) if s["t1"] > s["t0"]),
                   key=lambda s: (s["t0"], s["t1"]))
    segs: List[dict] = []

    def seg(name: str, component: str, t0: float, t1: float) -> None:
        segs.append({"name": name, "component": component,
                     "t0": t0, "t1": t1, "dur": t1 - t0})

    cursor = t_start
    for s in spans:
        a = max(s["t0"], cursor)
        b = min(s["t1"], t_end)
        if b <= a:
            continue
        if a > cursor:
            seg("onchip", "onchip", cursor, a)
        seg(s["name"], s.get("component", "onchip"), a, b)
        cursor = b
    if t_end > cursor:
        seg("onchip", "onchip", cursor, t_end)
    return segs


def path_attribution(row: dict) -> Dict[str, float]:
    """Per-component time (ns) along one request's critical path."""
    out = {c: 0.0 for c in ATTRIBUTION_COMPONENTS}
    for s in critical_path(row):
        out[s["component"]] = out.get(s["component"], 0.0) + s["dur"]
    return out


def slowest(snapshot: dict, n: int = 10) -> List[dict]:
    """The ``n`` slowest retained requests, worst first."""
    rows = sorted(snapshot.get("spans", ()),
                  key=lambda r: r["total"], reverse=True)
    return rows[:n]


def attribution_table(snapshot: dict) -> str:
    """Human-readable component attribution of one trace snapshot."""
    att = snapshot.get("attribution") or {}
    total = att.get("total", 0.0)
    lines = [
        f"requests : {att.get('n', 0)} measured "
        f"({att.get('hits', 0)} LLC hits, {att.get('misses', 0)} misses)",
        f"{'component':<14s} {'time(ns)':>14s} {'share':>7s}",
    ]
    for comp in ATTRIBUTION_COMPONENTS:
        v = att.get(comp, 0.0)
        share = v / total if total > 0 else 0.0
        lines.append(f"{comp:<14s} {v:>14.1f} {100.0 * share:>6.1f}%")
    lines.append(f"{'total':<14s} {total:>14.1f} {'100.0%':>7s}")
    return "\n".join(lines)


def format_critical_path(row: dict) -> str:
    """One request's blocking chain as an indented text block."""
    head = (f"req {row['req_id']} core {row['core']} addr {row['addr']:#x} "
            f"{'hit' if row.get('llc_hit') else 'miss'}"
            f"{' calm' if row.get('calm') else ''} "
            f"total {row['total']:.1f} ns")
    lines = [head]
    for s in critical_path(row):
        lines.append(f"  {s['name']:<18s} {s['dur']:>10.1f} ns "
                     f"[{s['component']}]  @{s['t0']:.1f}")
    return "\n".join(lines)
