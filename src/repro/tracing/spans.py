"""Zero-perturbation causal span tracer for the simulated memory path.

:class:`SpanTracer` follows the same discipline as :mod:`repro.obs`: it
is a pure observer. It schedules no events, mutates no request or
component state, and only *reads* the timestamps the simulation already
stamps onto each :class:`~repro.request.MemRequest` (the same event
vocabulary :func:`repro.validate.timeline_of` exports). A run with
tracing enabled therefore produces a bit-identical :class:`SimResult`
outside ``extras["trace"]`` — the fuzzer's ``tracing`` oracle enforces
this across all three dispatch kernels.

Per measured request the tracer records child spans at each component
boundary:

- ``mshr.wait`` — the op queued at the core's MSHR file before the miss
  could leave the L2 (pre-``t_create``, so outside the miss latency);
- ``llc.lookup`` — core tile -> LLC home slice -> lookup;
- ``tiering.migration`` — migration wait charged by the tier manager;
- ``cxl.tx`` / ``cxl.rx`` — CXL port crossings + link serialization;
- ``mc.queue`` — DRAM controller queuing (``t_mc_enqueue -> t_mc_issue``);
- ``dram.service`` — bank service (``t_mc_issue -> t_dram_done``).

Alongside the bounded span ring it keeps running attribution sums whose
arithmetic mirrors ``Chip._complete`` / ``LatencyBreakdown`` term for
term, so the span-derived queuing share reconciles exactly with the
Fig 2b parity golden (the ``fig2b_attribution`` registry metric).

In ``"kernel"`` mode the tracer additionally installs
``Simulator.event_hook`` and counts measurement-phase event dispatches
per callback ``__qualname__`` — a deterministic (no wall-clock) view of
where the event kernel spends its dispatches, honored identically by
all three dispatch loops.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

#: Valid tracing modes: disabled, span tracing, span + kernel dispatch counts.
TRACING_MODES = ("off", "on", "kernel")

#: In-flight mark-list indices. One small list per live request instead
#: of a dict — these are the tracer's hottest allocations. ``-1.0``
#: means "not seen", matching the request timestamp sentinel.
_M_MSHR, _M_SUBMIT, _M_MIGRATION = 0, 1, 2
_M_TX0, _M_TX1, _M_RX0, _M_RX1 = 3, 4, 5, 6

#: Version stamp of the ``extras["trace"]`` payload (additions only).
TRACE_SCHEMA_VERSION = 1


def resolve_tracing_mode(tracing) -> str:
    """Normalize a ``tracing=`` argument to one of :data:`TRACING_MODES`.

    ``None`` defers to ``$REPRO_TRACING`` (``1``/``on`` enables spans,
    ``kernel`` adds dispatch counting); booleans map to on/off.
    """
    if tracing is None:
        raw = os.environ.get("REPRO_TRACING", "")
        if raw in ("", "0", "off", "false"):
            return "off"
        if raw in ("1", "on", "true"):
            return "on"
        if raw == "kernel":
            return "kernel"
        raise ValueError(
            f"REPRO_TRACING must be one of {TRACING_MODES}, got {raw!r}")
    if tracing is True:
        return "on"
    if tracing is False:
        return "off"
    if tracing in TRACING_MODES:
        return tracing
    raise ValueError(f"tracing must be one of {TRACING_MODES}, got {tracing!r}")


class SpanTracer:
    """Opt-in per-request span recorder (see module docstring).

    ``simulate()`` attaches one at the warmup/measurement boundary, the
    same place the invariant checker and obs collector attach, so every
    request passing the measurement guard was created with hooks live.
    The span ring holds the most recent ``span_capacity`` requests;
    attribution sums cover *every* measured request.
    """

    def __init__(self, mode: str = "on", span_capacity: int = 512) -> None:
        if mode not in ("on", "kernel"):
            raise ValueError(
                f"SpanTracer mode must be 'on' or 'kernel', got {mode!r}")
        if span_capacity < 1:
            raise ValueError(f"span_capacity must be >= 1, got {span_capacity}")
        self.mode = mode
        self.span_capacity = span_capacity
        #: Distributed trace id (minted at ``repro serve`` submit and
        #: threaded through fleet TaskSpecs); ``None`` for local runs.
        self.trace_id: Optional[str] = None
        self.chip = None
        self._live: Dict[int, list] = {}            # req_id -> in-flight marks
        self._mshr: Dict[Tuple[int, int], float] = {}  # (core, op) -> stall t
        self.kernel_events: Dict[str, int] = {}
        #: Ring of compact completed-request tuples; the span dicts are
        #: materialized lazily in rows() so only the retained
        #: ``span_capacity`` rows ever pay for span assembly.
        self._ring: List[tuple] = []
        self._next = 0
        self.recorded = 0                           # rows recorded, incl. evicted
        # Attribution sums. Same accumulation order and per-element float
        # arithmetic as Chip._complete -> LatencyBreakdown.record, so
        # sum_queuing / sum_total is bit-identical to the breakdown's
        # avg_queuing / avg_miss_latency ratio.
        self.n = 0
        self.hits = 0
        self.misses = 0
        self.sum_total = 0.0
        self.sum_onchip = 0.0
        self.sum_queuing = 0.0
        self.sum_dram = 0.0
        self.sum_cxl = 0.0
        self.sum_migration = 0.0

    # -- wiring ----------------------------------------------------------------
    def attach(self, sim, chip) -> None:
        """Install hooks on the chip, cores, and CXL channels.

        Called at the measurement boundary (immediately before
        ``chip.begin_measurement()``); in ``"kernel"`` mode also installs
        the simulator's event hook, which the measurement-phase dispatch
        loop picks up.
        """
        self.chip = chip
        chip.tracer = self
        for core in chip.cores:
            core.tracer = self
        for port in chip.ports:
            if hasattr(port, "tracer"):  # CXL channels; bare DDR has no spans
                port.tracer = self
        if self.mode == "kernel":
            sim.event_hook = self.on_event

    # -- hook sites (all observers: read state, never schedule) ---------------
    def on_event(self, fn) -> None:
        """Kernel-mode dispatch hook: count one fired event per callback."""
        key = getattr(fn, "__qualname__", None) or repr(fn)
        ke = self.kernel_events
        ke[key] = ke.get(key, 0) + 1

    def on_mshr_stall(self, core_id: int, op_idx: int, t: float) -> None:
        """Op ``op_idx`` queued at the core's full MSHR file at time ``t``."""
        self._mshr[(core_id, op_idx)] = t

    def on_mshr_merge(self, core_id: int, op_idx: int) -> None:
        """Op merged into an in-flight line miss; discard any stall mark."""
        self._mshr.pop((core_id, op_idx), None)

    def on_l2_miss(self, req, now: float) -> None:
        """A demand miss left the L2 (``req.t_create`` just stamped)."""
        u = req.user
        if u["prefetch"]:
            # Prefetches are excluded from latency records (same guard as
            # the breakdown); don't track them.
            self._mshr.pop((req.core_id, u["op"]), None)
            return
        self._live[req.req_id] = [
            self._mshr.pop((req.core_id, u["op"]), -1.0),  # _M_MSHR
            -1.0, 0.0,                                     # submit, migration
            -1.0, -1.0, -1.0, -1.0,                        # cxl tx/rx windows
        ]

    def on_mem_submit(self, req, now: float, extra: float) -> None:
        """Request routed towards its memory port (``extra`` = migration wait)."""
        m = self._live.get(req.req_id)
        if m is None:
            return
        m[_M_SUBMIT] = now
        if extra:
            m[_M_MIGRATION] += extra

    def on_cxl_tx(self, req, now: float, arrive: float) -> None:
        """Request crossing CPU port + TX link towards the device."""
        m = self._live.get(req.req_id)
        if m is not None:
            m[_M_TX0] = now
            m[_M_TX1] = arrive

    def on_cxl_rx(self, req, now: float, arrive: float) -> None:
        """Response crossing device port + RX link back to the CPU."""
        m = self._live.get(req.req_id)
        if m is not None:
            m[_M_RX0] = now
            m[_M_RX1] = arrive

    def on_complete(self, req, now: float) -> None:
        """Response arrived back at the L2; close out the request."""
        marks = self._live.pop(req.req_id, None)
        chip = self.chip
        u = req.user
        # Mirror of Chip._complete's measurement guard, term for term.
        if (chip is None or not chip.measuring
                or req.t_create < chip.meas_start or u["prefetch"]):
            return
        total = now - req.t_create
        self.n += 1
        if req.llc_hit:
            # record_hit: the whole latency is on-chip time.
            self.hits += 1
            self.sum_total += total
            self.sum_onchip += total
        else:
            self.misses += 1
            t_issue = req.t_mc_issue
            queuing = (t_issue - req.t_mc_enqueue
                       if t_issue >= 0 and req.t_mc_enqueue >= 0 else 0.0)
            dram = (req.t_dram_done - t_issue
                    if req.t_dram_done >= 0 and t_issue >= 0 else 0.0)
            cxl = req.cxl_delay
            onchip = max(0.0, total - queuing - dram - cxl)
            self.sum_total += total
            self.sum_onchip += onchip
            self.sum_queuing += queuing
            self.sum_dram += dram
            self.sum_cxl += cxl
            if marks is not None and marks[_M_MIGRATION]:
                self.sum_migration += marks[_M_MIGRATION]
        # One flat tuple per completed request: span dicts are assembled
        # lazily in rows(), so eviction from the ring costs nothing.
        entry = (req.req_id, req.core_id, req.addr, req.calm,
                 bool(req.llc_hit), req.t_create, req.t_llc_done,
                 req.t_mc_enqueue, req.t_mc_issue, req.t_dram_done,
                 now, total, marks)
        if len(self._ring) < self.span_capacity:
            self._ring.append(entry)
        else:
            self._ring[self._next] = entry
            self._next = (self._next + 1) % self.span_capacity
        self.recorded += 1

    # -- span assembly ---------------------------------------------------------
    @staticmethod
    def _row_of(entry: tuple) -> dict:
        """Materialize one ring entry into a row with child spans.

        Each span carries the attribution component it charges to
        (``onchip`` / ``queuing`` / ``serialization`` / ``service`` /
        ``migration``), in causal order. For an LLC hit only the on-chip
        legs are causal (a wasted CALM memory fetch does not block
        completion), so the memory-side spans are dropped.
        """
        (req_id, core, addr, calm, llc_hit, t_create, t_llc_done,
         t_mc_enqueue, t_mc_issue, t_dram_done, t_complete, total,
         marks) = entry
        spans: List[dict] = []

        def add(name: str, component: str, t0: float, t1: float) -> None:
            if t0 >= 0 and t1 >= t0:
                spans.append({"name": name, "component": component,
                              "t0": t0, "t1": t1})

        if marks is not None and marks[_M_MSHR] >= 0:
            add("mshr.wait", "queuing", marks[_M_MSHR], t_create)
        add("llc.lookup", "onchip", t_create, t_llc_done)
        if not llc_hit:
            if marks is not None:
                if marks[_M_MIGRATION] and marks[_M_SUBMIT] >= 0:
                    add("tiering.migration", "migration", marks[_M_SUBMIT],
                        marks[_M_SUBMIT] + marks[_M_MIGRATION])
                if marks[_M_TX1] >= 0:
                    add("cxl.tx", "serialization",
                        marks[_M_TX0], marks[_M_TX1])
            add("mc.queue", "queuing", t_mc_enqueue, t_mc_issue)
            add("dram.service", "service", t_mc_issue, t_dram_done)
            if marks is not None and marks[_M_RX1] >= 0:
                add("cxl.rx", "serialization", marks[_M_RX0], marks[_M_RX1])
        return {"req_id": req_id, "core": core, "addr": addr, "calm": calm,
                "llc_hit": llc_hit, "t_create": t_create,
                "t_complete": t_complete, "total": total, "spans": spans}

    # -- output ----------------------------------------------------------------
    def rows(self) -> List[dict]:
        """Retained span rows, oldest first."""
        ring = self._ring[self._next:] + self._ring[:self._next]
        return [self._row_of(e) for e in ring]

    def snapshot(self) -> dict:
        """Deterministic ``extras["trace"]`` payload.

        ``attribution`` holds component *sums* in ns over all measured
        requests (hits included, as on-chip time, exactly like the
        latency breakdown); ``serialization`` is the CXL interface time
        net of migration waits, which are broken out separately.
        """
        serialization = self.sum_cxl - self.sum_migration
        attribution = {
            "n": self.n,
            "hits": self.hits,
            "misses": self.misses,
            "total": self.sum_total,
            "onchip": self.sum_onchip,
            "queuing": self.sum_queuing,
            "service": self.sum_dram,
            "serialization": serialization if serialization > 0.0 else 0.0,
            "migration": self.sum_migration,
        }
        snap = {
            "schema": TRACE_SCHEMA_VERSION,
            "mode": self.mode,
            "trace_id": self.trace_id,
            "requests": self.recorded,
            "attribution": attribution,
            "spans": self.rows(),
        }
        if self.mode == "kernel":
            snap["kernel_events"] = dict(sorted(self.kernel_events.items()))
        return snap
