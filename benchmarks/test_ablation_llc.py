"""Ablation: LLC design choices behind COAXIAL-4x.

Table II's "balanced" design halves the LLC to pay for the extra CXL
PHYs. This bench quantifies that trade directly: COAXIAL-4x with a full
LLC versus the halved default, and the LLC replacement policy's effect
(the hierarchy defaults to LRU; SRRIP is provided as the scan-resistant
alternative server LLCs use).
"""

from conftest import bench_ops

from repro.analysis import format_table, geomean
from repro.system.config import baseline_config, coaxial_config
from repro.system.sim import simulate
from repro.workloads import get_workload

WORKLOADS = ["stream-copy", "PageRank", "raytrace", "cam4"]


def sweep_llc_size():
    out = {}
    for name, llc in (("half-LLC (default)", 128), ("full-LLC", 256)):
        cfg = coaxial_config(llc_kb_per_core=llc, name=f"coax-{llc}k")
        out[name] = {w: simulate(cfg, get_workload(w), ops_per_core=bench_ops())
                     for w in WORKLOADS}
    out["baseline"] = {w: simulate(baseline_config(), get_workload(w),
                                   ops_per_core=bench_ops())
                       for w in WORKLOADS}
    return out


def sweep_replacement():
    out = {}
    for pol in ("lru", "srrip", "random"):
        cfg = baseline_config(replacement=pol, name=f"base-{pol}")
        out[pol] = {w: simulate(cfg, get_workload(w), ops_per_core=bench_ops())
                    for w in WORKLOADS}
    return out


def test_ablation_llc_size(run_once):
    res = run_once(sweep_llc_size)
    rows = []
    gms = {}
    for key in ("half-LLC (default)", "full-LLC"):
        sps = [res[key][w].speedup_over(res["baseline"][w]) for w in WORKLOADS]
        gms[key] = geomean(sps)
        for w, s in zip(WORKLOADS, sps):
            rows.append([w, key, s, res[key][w].llc_mpki])
    print("\nAblation — COAXIAL-4x LLC capacity (speedup vs baseline):")
    print(format_table(["workload", "LLC", "speedup", "MPKI"], rows))
    print(f"geomeans: {gms}")

    # The paper's claim: for bandwidth-rich COAXIAL, halving the LLC costs
    # little — the halved design stays within ~15% of the full-LLC one.
    assert gms["half-LLC (default)"] > gms["full-LLC"] * 0.85
    # And more capacity can only lower (or keep) the miss rate.
    for w in WORKLOADS:
        assert (res["full-LLC"][w].llc_mpki
                <= res["half-LLC (default)"][w].llc_mpki * 1.1)


def test_ablation_replacement(run_once):
    res = run_once(sweep_replacement)
    rows = []
    for pol, by_wl in res.items():
        for w in WORKLOADS:
            rows.append([w, pol, by_wl[w].ipc, by_wl[w].llc_hit_rate])
    print("\nAblation — LLC replacement policy (DDR baseline):")
    print(format_table(["workload", "policy", "IPC", "LLC hit rate"], rows))

    # Sanity: all policies land in the same performance regime; random is
    # never dramatically better than LRU on these reuse patterns.
    for w in WORKLOADS:
        assert res["random"][w].ipc < res["lru"][w].ipc * 1.3
        assert res["srrip"][w].ipc > res["lru"][w].ipc * 0.7
