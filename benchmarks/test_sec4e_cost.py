"""Section IV-E: memory capacity and cost benefits.

Paper claims: DIMM cost grows superlinearly with density (128/256 GB
DIMMs cost 5x/20x a 64 GB DIMM) and 2DPC costs ~15% bandwidth, so by
enabling 4x more channels COAXIAL reaches the same or higher capacity
with cheaper low-density 1DPC DIMMs.
"""

from repro.analysis import format_table
from repro.area.cost import iso_capacity_comparison


def build_sec4e():
    return {cap: iso_capacity_comparison(capacity_gb=cap)
            for cap in (1536, 3072, 6144)}


def test_sec4e_cost(run_once):
    tables = run_once(build_sec4e)

    for cap, rows in tables.items():
        print(f"\nSection IV-E — iso-capacity comparison at {cap} GB:")
        print(format_table(
            ["system", "channels", "DIMM GB", "DPC", "capacity",
             "rel cost", "cost/GB", "rel BW"],
            [[r["system"], r["channels"], r["dimm_gb"], r["dpc"],
              r["capacity_gb"], r["relative_cost"], r["cost_per_gb"],
              r["relative_bw"]] for r in rows]))

    # Shape at every capacity point: COAXIAL is cheaper per GB, uses
    # lower-density DIMMs, and retains a large bandwidth advantage.
    for cap, rows in tables.items():
        by = {r["system"]: r for r in rows}
        assert by["COAXIAL"]["cost_per_gb"] <= by["DDR-based"]["cost_per_gb"]
        assert by["COAXIAL"]["dimm_gb"] <= by["DDR-based"]["dimm_gb"]
        assert by["COAXIAL"]["relative_bw"] > 2 * by["DDR-based"]["relative_bw"]
