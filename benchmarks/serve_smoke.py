"""End-to-end smoke test for the ``repro serve`` daemon.

Boots a real server subprocess and drives the acceptance path over
actual sockets:

1. two concurrent clients submit sweep jobs; a resubmission of an
   already-computed grid settles entirely from the shared result cache
   (``cached_tasks == total_tasks``, no pool work);
2. a job whose simulation cannot finish inside ``--job-timeout`` is
   reported ``timed_out`` while the server keeps serving new jobs;
3. ``/metrics`` scrapes as valid Prometheus text with the expected
   counters;
4. SIGTERM drains the server and it exits 0 inside the budget.

Run directly: ``PYTHONPATH=src python benchmarks/serve_smoke.py``.
Exit code 0 on success. CI runs this as the ``serve-smoke`` job.
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

HOST = "127.0.0.1"
JOB_TIMEOUT_S = 8.0          # covers pool spawn + small sims on a loaded
                             # 1-core CI box; the hung job needs ~40s
HUNG_OPS = 50_000            # ~40s of simulation: cannot beat the deadline
FAST_OPS = 300
BOOT_BUDGET_S = 30
EXIT_BUDGET_S = 30


def free_port():
    with socket.socket() as s:
        s.bind((HOST, 0))
        return s.getsockname()[1]


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection(HOST, port, timeout=30)
    payload = json.dumps(body).encode() if body is not None else None
    conn.request(method, path, body=payload)
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, data


def rjson(port, method, path, body=None):
    status, data = request(port, method, path, body)
    return status, json.loads(data)


def submit(port, spec, expect=202):
    status, payload = rjson(port, "POST", "/jobs", spec)
    assert status == expect, (status, payload)
    return payload["job"]


def wait_job(port, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, payload = rjson(port, "GET", f"/jobs/{job_id}")
        assert status == 200, payload
        job = payload["job"]
        if job["state"] not in ("queued", "running"):
            return job
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


def wait_for_boot(port, proc):
    deadline = time.time() + BOOT_BUDGET_S
    while time.time() < deadline:
        if proc.poll() is not None:
            raise AssertionError(f"server died at boot: rc={proc.returncode}")
        try:
            status, payload = rjson(port, "GET", "/healthz")
            if status == 200 and payload["status"] == "ok":
                return
        except OSError:
            pass
        time.sleep(0.2)
    raise AssertionError(f"server not up within {BOOT_BUDGET_S}s")


def metric(parsed, name):
    (value,) = [v for n, _, v in parsed[name]["samples"] if n == name]
    return value


def main():
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.obs.export import parse_prometheus

    port = free_port()
    cache_dir = os.path.join(os.path.dirname(__file__), "..",
                             f".serve-smoke-cache-{port}")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", HOST,
         "--port", str(port), "--pool-workers", "2", "--max-active", "1",
         "--job-timeout", str(JOB_TIMEOUT_S), "--retries", "0",
         "--cache-dir", cache_dir],
        env=env)
    try:
        wait_for_boot(port, proc)
        print(f"serve-smoke: server up on :{port}")

        # -- 1. two concurrent clients; duplicates settle from cache -----
        grid_a = {"configs": "ddr-baseline", "workloads": "mcf",
                  "ops": FAST_OPS, "seeds": [1, 2], "tenant": "alice"}
        grid_b = {"configs": "coaxial-4x", "workloads": "mcf",
                  "ops": FAST_OPS, "seeds": [1], "tenant": "bob"}
        done, lock = {}, threading.Lock()

        def client(name, spec):
            job = submit(port, spec)
            final = wait_job(port, job["id"])
            with lock:
                done[name] = final

        threads = [threading.Thread(target=client, args=("a", grid_a)),
                   threading.Thread(target=client, args=("b", grid_b))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "client thread stuck"
        assert done["a"]["state"] == "done", done["a"]
        assert done["b"]["state"] == "done", done["b"]
        assert done["a"]["cached_tasks"] == 0, done["a"]

        dup = wait_job(port, submit(port, grid_a)["id"])
        assert dup["state"] == "done", dup
        assert dup["cached_tasks"] == dup["total_tasks"] == 2, dup
        print("serve-smoke: concurrent submit ok, resubmission fully cached")

        # -- 2. a hung job times out; the server keeps serving -----------
        hung = submit(port, {"configs": "ddr-baseline", "workloads": "mcf",
                             "ops": HUNG_OPS, "tenant": "carol"})
        final = wait_job(port, hung["id"])
        assert final["state"] == "timed_out", final
        assert final["timed_out_tasks"] == 1, final
        after = wait_job(port, submit(port, grid_b)["id"])
        assert after["state"] == "done", after
        print("serve-smoke: hung job timed out, server still serving")

        # -- 3. /metrics round-trips through the Prometheus parser -------
        status, text = request(port, "GET", "/metrics")
        assert status == 200
        parsed = parse_prometheus(text.decode())
        assert metric(parsed, "repro_serve_jobs_accepted_total") == 5
        assert metric(parsed, "repro_serve_jobs_timed_out_total") == 1
        assert metric(parsed, "repro_serve_tasks_cached_total") >= 3
        assert metric(parsed, "repro_serve_queue_depth") == 0
        print("serve-smoke: /metrics ok "
              f"({len(parsed)} metric families)")

        # -- 4. SIGTERM drains and exits 0 within budget ------------------
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=EXIT_BUDGET_S)
        assert rc == 0, f"server exited {rc} on SIGTERM"
        print("serve-smoke: clean SIGTERM exit (rc=0) -- PASS")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        import shutil
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
