"""Ablation: hardware prefetching vs CALM as bandwidth-for-latency trades.

Both mechanisms spend memory bandwidth to cut effective latency. This
bench contrasts them on COAXIAL: a next-line prefetcher, CALM_70, both,
and neither — on a streaming and a pointer-chasing workload. Expected
shape: prefetching helps streams, does nothing for dependent chains
(which is CALM's territory too), and the mechanisms compose without
hurting each other on a bandwidth-rich system.
"""

from conftest import bench_ops

from repro.analysis import format_table
from repro.system.config import coaxial_config
from repro.system.sim import simulate
from repro.workloads import get_workload

VARIANTS = {
    "neither": dict(calm_policy="never", prefetcher="none"),
    "prefetch": dict(calm_policy="never", prefetcher="nextline"),
    "calm": dict(calm_policy="calm_70", prefetcher="none"),
    "both": dict(calm_policy="calm_70", prefetcher="nextline"),
}
WORKLOADS = ["stream-copy", "gcc"]


def build_ablation():
    out = {}
    for vname, over in VARIANTS.items():
        cfg = coaxial_config(name=f"coax-{vname}", **over)
        for w in WORKLOADS:
            out[(vname, w)] = simulate(cfg, get_workload(w),
                                       ops_per_core=bench_ops())
    return out


def test_ablation_prefetch_vs_calm(run_once):
    res = run_once(build_ablation)

    rows = [[w, v, res[(v, w)].ipc,
             res[(v, w)].ipc / res[("neither", w)].ipc,
             res[(v, w)].bandwidth_gbps]
            for w in WORKLOADS for v in VARIANTS]
    print("\nAblation — prefetch vs CALM on COAXIAL-4x:")
    print(format_table(["workload", "variant", "IPC", "vs neither", "BW GB/s"],
                       rows))

    for w in WORKLOADS:
        base = res[("neither", w)].ipc
        # Neither mechanism may hurt on a bandwidth-rich system.
        for v in ("prefetch", "calm", "both"):
            assert res[(v, w)].ipc > base * 0.93, (v, w)
    # CALM must help the streaming workload on COAXIAL.
    assert res[("calm", "stream-copy")].ipc > res[("neither", "stream-copy")].ipc
