"""Figure 6: COAXIAL performance on random 12-workload mixes.

Paper claims: across 10 random mixes, min/max/geomean speedup of
1.5x/1.9x/1.7x — i.e. mixes benefit at least as much as homogeneous runs
because bandwidth-hungry tenants drive up baseline utilization for
everyone.
"""

import os

from conftest import bench_ops

from repro.analysis import format_table, geomean
from repro.system.config import baseline_config, coaxial_config
from repro.system.sim import simulate
from repro.workloads import make_mixes


def n_mixes() -> int:
    return int(os.environ.get("REPRO_BENCH_MIXES", "4"))


def build_fig6():
    mixes = make_mixes(n_mixes=n_mixes(), n_cores=12, ops_per_core=bench_ops())
    out = []
    for name, traces in mixes:
        b = simulate(baseline_config(), traces)
        c = simulate(coaxial_config(), traces)
        out.append((name, b, c))
    return out


def test_fig6_mixes(run_once):
    results = run_once(build_fig6)

    rows = []
    speedups = []
    for name, b, c in results:
        sp = c.speedup_over(b)
        speedups.append(sp)
        rows.append([name, b.ipc, c.ipc, sp,
                     100 * b.bandwidth_utilization, 100 * c.bandwidth_utilization])
    print("\nFigure 6 — mixed workloads (12 random tenants per mix):")
    print(format_table(
        ["mix", "base IPC", "coax IPC", "speedup", "b util%", "c util%"], rows))
    print(f"min {min(speedups):.2f}x  max {max(speedups):.2f}x  "
          f"geomean {geomean(speedups):.2f}x (paper: 1.5/1.9/1.7)")

    # Shape: every mix wins, and mixes do at least as well as the suite mean.
    assert min(speedups) > 1.0
    assert geomean(speedups) > 1.2
