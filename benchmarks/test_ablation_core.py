"""Ablation: core microarchitecture parameters.

The paper's speedups hinge on memory-level parallelism: a 256-entry ROB
and 16 MSHRs per core let many misses overlap, which is what converts
lower memory latency into IPC. These benches verify the model responds to
both knobs the way real out-of-order cores do.
"""

from conftest import bench_ops

from repro.analysis import format_table
from repro.system.config import baseline_config
from repro.system.sim import simulate
from repro.workloads import get_workload


def sweep_mshrs(values=(2, 8, 16, 64)):
    wl = get_workload("stream-copy")
    return {m: simulate(baseline_config(mshrs=m, name=f"base-mshr{m}"),
                        wl, ops_per_core=bench_ops())
            for m in values}


def sweep_rob(values=(32, 128, 256, 1024)):
    wl = get_workload("bwaves")
    return {r: simulate(baseline_config(rob=r, name=f"base-rob{r}"),
                        wl, ops_per_core=bench_ops())
            for r in values}


def test_ablation_mshrs(run_once):
    res = run_once(sweep_mshrs)
    rows = [[m, r.ipc, r.bandwidth_gbps, r.avg_queuing] for m, r in res.items()]
    print("\nAblation — MSHRs per core (stream-copy, DDR baseline):")
    print(format_table(["MSHRs", "IPC", "BW GB/s", "queue ns"], rows))

    # More MSHRs -> more outstanding misses -> more bandwidth extracted.
    assert res[16].bandwidth_gbps > res[2].bandwidth_gbps
    assert res[16].ipc > res[2].ipc
    # Saturation: beyond the bandwidth wall, extra MSHRs stop helping much.
    assert res[64].ipc < res[16].ipc * 1.5


def test_ablation_rob(run_once):
    res = run_once(sweep_rob)
    rows = [[r, v.ipc, v.avg_miss_latency] for r, v in res.items()]
    print("\nAblation — ROB size (bwaves, DDR baseline):")
    print(format_table(["ROB", "IPC", "miss ns"], rows))

    # A larger window tolerates more latency: IPC must be monotone-ish.
    assert res[256].ipc > res[32].ipc
    assert res[1024].ipc >= res[256].ipc * 0.9
