"""Table IV: baseline IPC and LLC MPKI for every workload.

The synthetic workload generators are calibrated so LLC MPKI lands in
Table IV's band per workload; IPC trends (high-MPKI => low IPC) must hold.
"""

from conftest import bench_ops, bench_workloads

from repro.analysis import format_table
from repro.analysis.tables import run_suite
from repro.system.config import baseline_config
from repro.workloads import get_workload


def build_tab4():
    return run_suite(baseline_config(), bench_workloads(), bench_ops())


def test_tab4_workloads(run_once):
    suite = run_once(build_tab4)

    rows = []
    mpki_ok = 0
    for name, r in suite.results.items():
        wl = get_workload(name)
        in_band = 0.5 <= r.llc_mpki / wl.paper_mpki <= 2.0
        mpki_ok += in_band
        rows.append([name, r.ipc, wl.paper_ipc, r.llc_mpki, wl.paper_mpki,
                     "ok" if in_band else "OFF"])
    print("\nTable IV — baseline IPC / LLC MPKI (measured vs paper):")
    print(format_table(
        ["workload", "IPC", "paper IPC", "MPKI", "paper MPKI", "band"], rows))

    n = len(suite.results)
    print(f"{mpki_ok}/{n} workloads within 0.5-2x of the paper's MPKI")
    assert mpki_ok >= 0.8 * n

    # IPC ordering: the heaviest workloads must run slower than the lightest.
    res = suite.results
    if "lbm" in res and "raytrace" in res:
        assert res["lbm"].ipc < res["raytrace"].ipc
    if "stream-copy" in res and "cam4" in res:
        assert res["stream-copy"].ipc < res["cam4"].ipc
