"""Figure 8: alternative COAXIAL configurations.

Paper claims: COAXIAL-2x achieves 1.17x, COAXIAL-4x 1.39x (despite half
the LLC), COAXIAL-asym 1.52x (a further 13% over 4x), and no workload is
hurt by asym's reduced write bandwidth relative to 4x.
"""

from conftest import bench_ops, bench_workloads, parity_assert

from repro.analysis import format_table, geomean
from repro.analysis.tables import run_suite
from repro.system.config import (
    baseline_config, coaxial_2x_config, coaxial_config, coaxial_asym_config,
)


def build_fig8():
    wls = bench_workloads()
    ops = bench_ops()
    return {
        "base": run_suite(baseline_config(), wls, ops),
        "2x": run_suite(coaxial_2x_config(), wls, ops),
        "4x": run_suite(coaxial_config(), wls, ops),
        "asym": run_suite(coaxial_asym_config(), wls, ops),
    }


def test_fig8_configs(run_once):
    suites = run_once(build_fig8)
    base = suites["base"]

    rows = []
    gm = {}
    for key in ("2x", "4x", "asym"):
        sps = {w: suites[key][w].speedup_over(base[w]) for w in base.results}
        gm[key] = geomean(sps.values())
        for w, s in sps.items():
            rows.append([w, key, s])
    print("\nFigure 8 — COAXIAL configuration comparison (speedup vs baseline):")
    print(format_table(["workload", "config", "speedup"], rows))
    print(f"geomeans: 2x={gm['2x']:.2f} 4x={gm['4x']:.2f} asym={gm['asym']:.2f} "
          "(paper: 1.17 / 1.39 / 1.52)")

    # Shape: asym > 4x > 2x > 1.
    assert gm["asym"] > gm["4x"] > gm["2x"]
    assert gm["2x"] > 1.0
    # Golden parity bands for the per-config geomean speedups.
    parity_assert("fig8.geomean_speedup.coaxial-2x", gm["2x"])
    parity_assert("fig8.geomean_speedup.coaxial-asym", gm["asym"])
    # asym's reduced write bandwidth must not hurt anyone vs 4x (paper VI-C).
    worse = [w for w in base.results
             if suites["asym"][w].ipc < suites["4x"][w].ipc * 0.97]
    print(f"workloads hurt by asym vs 4x (beyond noise): {worse}")
    assert len(worse) <= max(1, len(base.results) // 8)
