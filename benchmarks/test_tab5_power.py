"""Table V: energy/power comparison for the 144-core server.

Drives the paper's power model with *measured* CPI and bandwidth
utilization from the simulated suite. Paper claims: COAXIAL draws more
power (646 W -> 931 W) but wins EDP by 25% and ED^2P by 47%, with ~96% of
the baseline's perf/W.
"""

from conftest import bench_ops, bench_workloads, parity_assert

from repro.analysis import format_table
from repro.analysis.tables import run_suite
from repro.power import energy_report, system_power
from repro.system.config import baseline_config, coaxial_config


def build_tab5():
    wls = bench_workloads()
    ops = bench_ops()
    base = run_suite(baseline_config(), wls, ops)
    coax = run_suite(coaxial_config(), wls, ops)

    def avg(vals):
        vals = list(vals)
        return sum(vals) / len(vals)

    base_cpi = avg(r.cpi for r in base.results.values())
    coax_cpi = avg(r.cpi for r in coax.results.values())
    base_util = avg(r.bandwidth_utilization for r in base.results.values())
    coax_util = avg(r.bandwidth_utilization for r in coax.results.values())

    base_p = system_power("DDR-based", n_ddr_channels=12, n_cxl_lanes=0,
                          llc_mb=288, dimm_utilization=base_util)
    coax_p = system_power("COAXIAL", n_ddr_channels=48, n_cxl_lanes=384,
                          llc_mb=144, dimm_utilization=coax_util)
    return (energy_report(base_p, base_cpi), energy_report(coax_p, coax_cpi),
            base_p, coax_p)


def test_tab5_power(run_once):
    base_e, coax_e, base_p, coax_p = run_once(build_tab5)

    print("\nTable V — power and efficiency (measured CPI/utilization):")
    comp_rows = [[k, bv, cv] for (k, bv), (_, cv)
                 in zip(base_p.as_dict().items(), coax_p.as_dict().items())]
    print(format_table(["component", "baseline W", "COAXIAL W"], comp_rows))
    rows = [
        ["CPI", base_e.cpi, coax_e.cpi],
        ["EDP", base_e.edp, coax_e.edp],
        ["ED^2P", base_e.ed2p, coax_e.ed2p],
        ["perf/W (x1000)", 1000 * base_e.perf_per_watt, 1000 * coax_e.perf_per_watt],
    ]
    print(format_table(["metric", "baseline", "COAXIAL"], rows))
    print(f"EDP ratio {coax_e.edp / base_e.edp:.2f} (paper 0.75), "
          f"ED^2P ratio {coax_e.ed2p / base_e.ed2p:.2f} (paper 0.53)")

    # Shape: more power, but better EDP and much better ED^2P.
    assert coax_e.power_w > base_e.power_w
    assert coax_e.cpi < base_e.cpi
    assert coax_e.edp < base_e.edp
    assert coax_e.ed2p / base_e.ed2p < coax_e.edp / base_e.edp
    # perf/W stays within ~25% of the baseline (paper: 96%).
    assert coax_e.perf_per_watt / base_e.perf_per_watt > 0.7
    # Golden parity bands for the efficiency ratios.
    parity_assert("tab5.edp_ratio.coaxial-4x", coax_e.edp / base_e.edp)
    parity_assert("tab5.ed2p_ratio.coaxial-4x", coax_e.ed2p / base_e.ed2p)
