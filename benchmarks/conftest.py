"""Shared infrastructure for the figure/table benchmarks.

Each ``test_figN_*``/``test_tabN_*`` module regenerates one element of the
paper's evaluation and prints the corresponding rows/series. Simulation
results are memoized per process (``repro.analysis.tables``), so benches
that share runs (e.g. Figure 5's baselines feed Figure 9) pay for them once.

Runtime knobs
-------------
``REPRO_BENCH_WORKLOADS=all``
    Run all 36 catalog workloads instead of the representative subset.
``REPRO_BENCH_OPS``
    Memory operations per core per run (default 2500).
"""

import os
from typing import List

import pytest

from repro.workloads import workload_names
from repro.workloads.catalog import REPRESENTATIVE


def bench_workloads() -> List[str]:
    """Workload list for benches (subset by default, ``all`` via env)."""
    if os.environ.get("REPRO_BENCH_WORKLOADS", "").lower() == "all":
        return workload_names()
    return list(REPRESENTATIVE)


def bench_ops() -> int:
    """Per-core memory operations per simulation."""
    return int(os.environ.get("REPRO_BENCH_OPS", "2500"))


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return _run
