"""Shared infrastructure for the figure/table benchmarks.

Each ``test_figN_*``/``test_tabN_*`` module regenerates one element of the
paper's evaluation and prints the corresponding rows/series. Simulation
results are memoized per process (``repro.analysis.tables``), so benches
that share runs (e.g. Figure 5's baselines feed Figure 9) pay for them once.

Runtime knobs
-------------
``REPRO_BENCH_WORKLOADS=all``
    Run all 36 catalog workloads instead of the representative subset.
``REPRO_BENCH_OPS``
    Memory operations per core per run (default 2500).
"""

import os
from pathlib import Path
from typing import List

import pytest

from repro.workloads import workload_names
from repro.workloads.catalog import REPRESENTATIVE

#: The committed parity golden (repo-root relative to this file).
PARITY_GOLDEN = Path(__file__).resolve().parent.parent / "goldens" / "parity.json"


def bench_workloads() -> List[str]:
    """Workload list for benches (subset by default, ``all`` via env)."""
    if os.environ.get("REPRO_BENCH_WORKLOADS", "").lower() == "all":
        return workload_names()
    return list(REPRESENTATIVE)


def bench_ops() -> int:
    """Per-core memory operations per simulation."""
    return int(os.environ.get("REPRO_BENCH_OPS", "2500"))


def parity_assert(metric_id: str, value: float) -> None:
    """Golden assertion shared by the figure/table benches.

    Always asserts the value lies inside the parity registry's sanity
    band for ``metric_id`` (scale-robust, so it holds for any bench
    workload subset / ops count). When the committed golden
    (``goldens/parity.json``) was blessed at *exactly* this bench's
    scale, additionally asserts the drift verdict versus the blessed
    value is not ``fail``.
    """
    from repro.parity import GoldenError, get_metric, load_golden
    from repro.parity.golden import golden_suite

    m = get_metric(metric_id)
    lo, hi = m.band
    assert lo <= value <= hi, (
        f"{metric_id} = {value:.4g} outside sanity band [{lo:g}, {hi:g}] "
        f"(paper: {m.paper}); if the recalibration is intentional, update "
        f"the registry band and re-bless the goldens")
    try:
        payload = load_golden(PARITY_GOLDEN)
    except GoldenError:
        return                      # no golden checked out: band check only
    suite = golden_suite(payload)
    if set(suite.workloads) != set(bench_workloads()) or suite.ops != bench_ops():
        return                      # golden blessed at a different scale
    entry = payload["metrics"].get(metric_id)
    if entry is None:
        return
    golden = float(entry["value"])
    verdict = m.tol.verdict(value, golden)
    assert verdict != "fail", (
        f"{metric_id} = {value:.4g} drifted beyond the fail tolerance from "
        f"the blessed golden {golden:.4g}; re-bless via `repro parity bless` "
        f"if intentional")


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return _run
