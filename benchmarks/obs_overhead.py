#!/usr/bin/env python
"""CI gate: observability overhead on simulation throughput.

Runs the same job with observability off and on ("on" = metrics +
time-series sampling; the kernel profiler is excluded because CI wants
the steady-state cost of leaving ``REPRO_OBS=1`` set, not the cost of
an explicit profiling session) and compares events/s. Each mode gets a
warmup run and then ``--reps`` timed runs; the best rep per mode is
compared so scheduler noise on shared CI runners doesn't trip the gate.

Exit status: 0 when the obs-on throughput is within ``--gate`` of the
obs-off throughput (default 10%), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.system.config import ALL_CONFIGS
from repro.system.sim import simulate
from repro.workloads import get_workload


def best_events_per_s(cfg, wl, ops: int, seed: int, obs: str,
                      reps: int) -> float:
    simulate(cfg, wl, ops_per_core=ops // 2, seed=seed, obs=obs)  # warmup
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        r = simulate(cfg, wl, ops_per_core=ops, seed=seed, obs=obs)
        wall = time.perf_counter() - t0
        best = max(best, r.extras["events_fired"] / wall)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--config", default="coaxial-4x")
    ap.add_argument("--workload", default="mcf")
    ap.add_argument("--ops", type=int, default=6000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--gate", type=float, default=0.10,
                    help="max tolerated fractional slowdown with obs on")
    args = ap.parse_args(argv)

    cfg = ALL_CONFIGS[args.config]()
    wl = get_workload(args.workload)
    off = best_events_per_s(cfg, wl, args.ops, args.seed, "off", args.reps)
    on = best_events_per_s(cfg, wl, args.ops, args.seed, "on", args.reps)
    slowdown = 1.0 - on / off
    print(f"obs off : {off:12.0f} events/s")
    print(f"obs on  : {on:12.0f} events/s")
    print(f"slowdown: {100.0 * slowdown:+.2f}% (gate {100.0 * args.gate:.0f}%)")
    if slowdown > args.gate:
        print("FAIL: observability overhead exceeds the gate", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
