#!/usr/bin/env python
"""CI gate: observability + tracing overhead on simulation throughput.

Runs the same job in three modes and compares events/s:

* ``off``      — no observers at all (the reference throughput);
* ``obs``      — metrics + time-series sampling ("on"; the kernel
  profiler is excluded because CI wants the steady-state cost of
  leaving ``REPRO_OBS=1`` set, not the cost of an explicit profiling
  session);
* ``obs+trace`` — the same obs collector plus the causal span tracer
  (``tracing="on"``), the full always-on observability stack.

Each mode gets a warmup run and then ``--reps`` timed runs; the best
rep per mode is compared so scheduler noise on shared CI runners
doesn't trip the gate.

Exit status: 0 when both observed modes stay within ``--gate`` of the
bare throughput (default 10%), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.system.config import ALL_CONFIGS
from repro.system.sim import simulate
from repro.workloads import get_workload


def best_events_per_s(cfg, wl, ops: int, seed: int, obs, tracing,
                      reps: int) -> float:
    simulate(cfg, wl, ops_per_core=ops // 2, seed=seed, obs=obs,
             tracing=tracing)  # warmup
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        r = simulate(cfg, wl, ops_per_core=ops, seed=seed, obs=obs,
                     tracing=tracing)
        wall = time.perf_counter() - t0
        best = max(best, r.extras["events_fired"] / wall)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--config", default="coaxial-4x")
    ap.add_argument("--workload", default="mcf")
    ap.add_argument("--ops", type=int, default=6000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--gate", type=float, default=0.10,
                    help="max tolerated fractional slowdown per observed mode")
    args = ap.parse_args(argv)

    cfg = ALL_CONFIGS[args.config]()
    wl = get_workload(args.workload)
    off = best_events_per_s(cfg, wl, args.ops, args.seed, "off", "off",
                            args.reps)
    modes = {
        "obs": best_events_per_s(cfg, wl, args.ops, args.seed, "on", "off",
                                 args.reps),
        "obs+trace": best_events_per_s(cfg, wl, args.ops, args.seed, "on",
                                       "on", args.reps),
    }
    print(f"{'off':<10s}: {off:12.0f} events/s")
    failed = []
    for name, eps in modes.items():
        slowdown = 1.0 - eps / off
        print(f"{name:<10s}: {eps:12.0f} events/s  "
              f"({100.0 * slowdown:+.2f}% vs off, "
              f"gate {100.0 * args.gate:.0f}%)")
        if slowdown > args.gate:
            failed.append(name)
    if failed:
        print(f"FAIL: overhead gate exceeded by: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
