"""Figure 9: read/write bandwidth split on the baseline system.

Paper claims: read traffic dominates — the average R:W ratio across the
suite is ~3.7:1; cam4 is the most write-intensive workload (approaching
1:1); this asymmetry is what CXL-asym exploits.
"""

from conftest import bench_ops, bench_workloads, parity_assert

from repro.analysis import format_table
from repro.analysis.tables import run_suite
from repro.system.config import baseline_config


def build_fig9():
    return run_suite(baseline_config(), bench_workloads(), bench_ops())


def test_fig9_rw_bandwidth(run_once):
    suite = run_once(build_fig9)

    rows = []
    ratios = {}
    for name, r in suite.results.items():
        ratio = (r.read_bandwidth_gbps / r.write_bandwidth_gbps
                 if r.write_bandwidth_gbps > 0 else float("inf"))
        ratios[name] = ratio
        rows.append([name, r.read_bandwidth_gbps, r.write_bandwidth_gbps, ratio])
    print("\nFigure 9 — baseline read/write DRAM bandwidth:")
    print(format_table(["workload", "read GB/s", "write GB/s", "R:W"], rows))

    total_rd = sum(r.read_bandwidth_gbps for r in suite.results.values())
    total_wr = sum(r.write_bandwidth_gbps for r in suite.results.values())
    agg = total_rd / total_wr
    print(f"aggregate R:W ratio {agg:.1f}:1 (paper average: 3.7:1)")

    # Shape: reads dominate for every workload; the traffic-weighted
    # aggregate sits inside the registry band the paper's analysis relies
    # on (CXL-asym provisions 3.2:1 against it).
    assert all(r.read_bandwidth_gbps > r.write_bandwidth_gbps
               for r in suite.results.values())
    parity_assert("fig9.rw_bandwidth_ratio.ddr-baseline", agg)
    # cam4 (stencil, write-heavy) must sit at the write-intensive end.
    if "cam4" in ratios:
        assert ratios["cam4"] < agg * 2
