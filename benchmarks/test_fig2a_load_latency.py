"""Figure 2a: DDR5-4800 channel load-latency curve (average and p90).

Paper claims: average latency rises ~3x/4x at 50%/60% bandwidth
utilization; p90 rises faster (4.7x/7.1x); queuing effects appear from
~20% load on the tail.
"""

from repro.analysis import format_table
from repro.dram import load_latency_curve

LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def build_curve():
    return load_latency_curve(LOADS, n_requests=2500)


def test_fig2a_load_latency(run_once):
    pts = run_once(build_curve)

    rows = [[f"{p.target_utilization:.0%}", f"{p.achieved_utilization:.0%}",
             p.mean_latency, p.p90_latency, p.p99_latency] for p in pts]
    print("\nFigure 2a — DDR5-4800 load-latency curve:")
    print(format_table(["load", "achieved", "avg ns", "p90 ns", "p99 ns"], rows))
    by_load = {p.target_utilization: p for p in pts}
    m_ratio = by_load[0.6].mean_latency / by_load[0.1].mean_latency
    p_ratio = by_load[0.6].p90_latency / by_load[0.1].p90_latency
    print(f"60% vs 10% load: mean x{m_ratio:.1f}, p90 x{p_ratio:.1f} "
          "(paper: mean ~4x unloaded, p90 ~7x)")

    # Shape assertions: superlinear growth, p90 grows faster than mean.
    assert m_ratio > 1.8
    assert p_ratio > m_ratio
    means = [p.mean_latency for p in pts]
    assert all(b >= a * 0.95 for a, b in zip(means, means[1:]))  # ~monotone
