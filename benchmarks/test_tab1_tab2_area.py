"""Tables I and II: component areas and candidate server designs."""

from repro.analysis import format_table
from repro.area import AREA_TABLE, server_design_table


def build_tables():
    return AREA_TABLE, server_design_table()


def test_tab1_tab2_area(run_once):
    area, designs = run_once(build_tables)

    print("\nTable I — component area relative to 1MB LLC:")
    print(format_table(["component", "area"],
                       [[c.name, c.area] for c in area.values()]))

    print("\nTable II — server designs:")
    rows = [[d["design"], d["cores"], d["llc_per_core_mb"], d["ddr_channels"],
             d["cxl_channels"], d["relative_bw"], d["relative_area"], d["comment"]]
            for d in designs]
    print(format_table(
        ["design", "cores", "LLC/core", "DDR", "CXL", "rel BW", "rel area", "note"],
        rows))

    by = {d["design"]: d for d in designs}
    # Paper's Table II anchor points.
    assert by["COAXIAL-5x"]["relative_bw"] == 5.0
    assert 1.12 < by["COAXIAL-5x"]["relative_area"] < 1.22   # ~1.17
    assert abs(by["COAXIAL-4x"]["relative_area"] - 1.01) < 0.03
    assert by["COAXIAL-2x"]["relative_area"] <= by["COAXIAL-5x"]["relative_area"]
    assert by["DDR-based"]["relative_area"] == 1.0
