"""Figure 7: CALM mechanism sensitivity.

(a) Speedup of each CALM mechanism relative to serial LLC/memory access,
    on both the DDR baseline and COAXIAL. Paper claims: CALM barely helps
    the bandwidth-starved baseline on average, consistently helps
    bandwidth-rich COAXIAL, and CALM_70 performs close to an ideal
    predictor (boosting COAXIAL from 1.28x to 1.39x over baseline).
(b) Decision quality: false positives (wasted bandwidth) vs false
    negatives (serialized accesses). With COAXIAL's high LLC miss ratio,
    false negatives dominate false positives.
"""

from conftest import bench_ops, parity_assert

from repro.analysis import format_table, geomean
from repro.analysis.tables import run_one
from repro.system.config import baseline_config, coaxial_config

POLICIES = ["never", "mapi", "calm_50", "calm_60", "calm_70", "ideal"]
WORKLOADS = ["stream-copy", "PageRank", "gcc", "kmeans", "canneal"]


def build_fig7():
    ops = bench_ops()
    out = {}
    for make, sys_name in ((baseline_config, "baseline"), (coaxial_config, "coaxial")):
        for pol in POLICIES:
            cfg = make(calm_policy=pol)
            cfg = cfg.replace(name=f"{cfg.name}+{pol}")
            for wl in WORKLOADS:
                out[(sys_name, pol, wl)] = run_one(cfg, wl, ops)
    return out


def test_fig7_calm(run_once):
    res = run_once(build_fig7)

    print("\nFigure 7a — speedup vs serial access per CALM mechanism:")
    rows = []
    rel = {}
    for sys_name in ("baseline", "coaxial"):
        for pol in POLICIES:
            sps = [res[(sys_name, pol, w)].ipc / res[(sys_name, "never", w)].ipc
                   for w in WORKLOADS]
            rel[(sys_name, pol)] = geomean(sps)
            rows.append([sys_name, pol, geomean(sps)])
    print(format_table(["system", "policy", "geomean vs serial"], rows))

    print("\nFigure 7b — CALM decision quality on COAXIAL (CALM_70):")
    rows = []
    for w in WORKLOADS:
        r = res[("coaxial", "calm_70", w)]
        rows.append([w, 100 * r.calm_fraction, 100 * r.calm_false_pos_rate,
                     100 * r.calm_false_neg_rate])
    print(format_table(
        ["workload", "CALM %", "false pos %", "false neg %"], rows))

    # Shape assertions.
    coax_gain = rel[("coaxial", "calm_70")]
    base_gain = rel[("baseline", "calm_70")]
    print(f"CALM_70 gain: baseline {base_gain:.3f}, coaxial {coax_gain:.3f} "
          "(paper: negligible vs meaningful)")
    assert coax_gain > 1.0                        # CALM helps COAXIAL
    assert coax_gain > base_gain - 0.02           # and helps it more
    # CALM_70 close to the ideal predictor on COAXIAL (paper Section VI-B).
    assert rel[("coaxial", "calm_70")] > rel[("coaxial", "ideal")] - 0.05
    # CALM_R thresholds are ordered sensibly.
    assert rel[("coaxial", "calm_70")] >= rel[("coaxial", "calm_50")] - 0.03
    # Golden parity band: CALM_70 coverage of L2 misses on COAXIAL.
    coverage = [res[("coaxial", "calm_70", w)].calm_fraction for w in WORKLOADS]
    parity_assert("fig7.calm_coverage.coaxial-4x",
                  sum(coverage) / len(coverage))
