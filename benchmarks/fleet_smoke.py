"""End-to-end smoke test for the ``repro.fleet`` distributed sweep fleet.

Boots a real broker subprocess plus two worker subprocesses and drives
the acceptance path over actual sockets:

1. a 2-worker fleet sweep of the smoke grid produces merged SimResults
   **bit-identical** to a single-pool ``repro sweep`` of the same grid
   (separate cache directories, so both legs really simulate), and the
   fleet's exactly-merged miss-latency quantiles equal the pool's;
2. one worker is SIGKILLed mid-run (short leases, no heartbeats
   surviving death) and the fleet still completes every task via lease
   expiry and requeue — ``requeues > 0`` is asserted on the broker;
3. a small successive-halving campaign runs over the same broker and
   picks a winner;
4. drain flags oneshot workers to exit 0, and SIGTERM stops the broker
   cleanly; ``BENCH_fleet.json`` is written for the CI artifact.

Run directly: ``PYTHONPATH=src python benchmarks/fleet_smoke.py``.
Exit code 0 on success. CI runs this as the ``fleet-smoke`` job.
"""

import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time

HOST = "127.0.0.1"
BOOT_BUDGET_S = 30
EXIT_BUDGET_S = 30
SETTLE_BUDGET_S = 300
GRID_CONFIGS = ["ddr-baseline", "coaxial-4x"]
GRID_WORKLOADS = ["mcf", "stream-copy", "gcc"]
GRID_OPS = 800
KILL_LEASE_S = 2.0           # short leases so a killed worker requeues fast
BENCH_OUT = "BENCH_fleet.json"

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(ROOT, "src")


def free_port():
    with socket.socket() as s:
        s.bind((HOST, 0))
        return s.getsockname()[1]


def rjson(port, method, path, body=None):
    conn = http.client.HTTPConnection(HOST, port, timeout=30)
    payload = json.dumps(body).encode() if body is not None else None
    conn.request(method, path, body=payload)
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, json.loads(data) if data else {}


def wait_for_boot(port, proc):
    deadline = time.time() + BOOT_BUDGET_S
    while time.time() < deadline:
        if proc.poll() is not None:
            raise AssertionError(f"broker died at boot: rc={proc.returncode}")
        try:
            status, payload = rjson(port, "GET", "/healthz")
            if status == 200 and payload["status"] == "ok":
                return
        except OSError:
            pass
        time.sleep(0.2)
    raise AssertionError(f"broker not up within {BOOT_BUDGET_S}s")


def start_broker(env, lease_s, cache_dir):
    port = free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "broker", "--host", HOST,
         "--port", str(port), "--lease", str(lease_s),
         "--cache-dir", cache_dir], env=env)
    wait_for_boot(port, proc)
    return port, proc


def start_worker(env, port, worker_id, cache_dir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "worker",
         "--broker", f"http://{HOST}:{port}", "--id", worker_id,
         "--poll", "0.1", "--cache-dir", cache_dir], env=env)


def wait_settled(port, ids, budget_s=SETTLE_BUDGET_S):
    wanted = set(ids)
    deadline = time.time() + budget_s
    while time.time() < deadline:
        status, payload = rjson(port, "GET", "/tasks")
        assert status == 200, payload
        tasks = [t for t in payload["tasks"] if t["id"] in wanted]
        if all(t["state"] in ("done", "failed") for t in tasks):
            return tasks
        time.sleep(0.2)
    raise AssertionError(f"tasks not settled within {budget_s}s")


def stop_all(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def main():
    sys.path.insert(0, SRC)
    from repro.fleet import FleetClient, LocalExecutor, expand_specs, run_campaign

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    fleet_cache = os.path.join(ROOT, f".fleet-smoke-cache-{os.getpid()}")
    pool_cache = os.path.join(ROOT, f".fleet-smoke-pool-{os.getpid()}")
    procs = []
    try:
        # -- 1. bit-identity: 2-worker fleet vs single-pool sweep ---------
        port, broker = start_broker(env, lease_s=30.0, cache_dir=fleet_cache)
        procs.append(broker)
        print(f"fleet-smoke: broker up on :{port}")
        workers = [start_worker(env, port, f"w{i}", fleet_cache)
                   for i in range(2)]
        procs.extend(workers)

        specs = expand_specs(GRID_CONFIGS, GRID_WORKLOADS, ops=GRID_OPS,
                             obs="on")
        client = FleetClient(f"http://{HOST}:{port}")
        fleet_results = client.run(specs, timeout_s=SETTLE_BUDGET_S)
        # pool leg gets its own cache dir so it really simulates too
        from pathlib import Path

        from repro.exec.cache import ResultCache
        pool_results = LocalExecutor(
            workers=2, cache=ResultCache(root=Path(pool_cache))).run(specs)

        import dataclasses
        fleet_dicts = [dataclasses.asdict(r.result) for r in fleet_results]
        pool_dicts = [dataclasses.asdict(r.result) for r in pool_results]
        assert fleet_dicts == pool_dicts, (
            "fleet results differ from single-pool sweep")
        print(f"fleet-smoke: {len(specs)} task(s) bit-identical across "
              "2-worker fleet and single pool")

        from repro.exec.perf import fleet_summary
        fleet_ml = fleet_summary(fleet_results).get("miss_latency_ns")
        pool_ml = fleet_summary(pool_results).get("miss_latency_ns")
        assert fleet_ml and pool_ml and fleet_ml == pool_ml, (
            f"merged quantiles differ: {fleet_ml} vs {pool_ml}")
        print(f"fleet-smoke: merged miss-latency quantiles identical "
              f"(p99 {fleet_ml['p99']:.0f} ns over {fleet_ml['count']} misses)")

        from repro.exec.perf import bench_record, write_bench
        record = bench_record(fleet_results, 0.0, workers=2)
        record["fleet"]["broker"] = client.broker_url
        out = write_bench(record, os.path.join(ROOT, BENCH_OUT), force=True)
        print(f"fleet-smoke: benchmark record written to {out}")

        # drain; oneshot workers must exit 0
        client.drain()
        for w in workers:
            rc = w.wait(timeout=EXIT_BUDGET_S)
            assert rc == 0, f"worker exited {rc} after drain"
        broker.send_signal(signal.SIGTERM)
        assert broker.wait(timeout=EXIT_BUDGET_S) == 0
        print("fleet-smoke: drain + SIGTERM clean (all rc=0)")

        # -- 2. kill a worker mid-run; leases expire and requeue ----------
        # Fresh broker with short leases and a fresh cache, so every task
        # really simulates and the victim dies holding a live lease.
        shutil.rmtree(fleet_cache, ignore_errors=True)
        port, broker = start_broker(env, lease_s=KILL_LEASE_S,
                                    cache_dir=fleet_cache)
        procs.append(broker)
        victim = start_worker(env, port, "victim", fleet_cache)
        procs.append(victim)
        client = FleetClient(f"http://{HOST}:{port}")
        ids = client.submit(expand_specs(GRID_CONFIGS, ["mcf", "gcc"],
                                         ops=GRID_OPS))
        # wait until the victim holds a lease, then kill -9 mid-task
        deadline = time.time() + 30
        while time.time() < deadline:
            _, payload = rjson(port, "GET", "/tasks")
            if any(t["state"] == "leased" for t in payload["tasks"]):
                break
            time.sleep(0.05)
        else:
            raise AssertionError("victim never leased a task")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)
        print("fleet-smoke: victim worker killed mid-lease")

        survivor = start_worker(env, port, "survivor", fleet_cache)
        procs.append(survivor)
        tasks = wait_settled(port, ids)
        assert all(t["state"] == "done" for t in tasks), tasks
        requeues = sum(t["requeues"] for t in tasks)
        assert requeues > 0, f"expected a requeue after the kill: {tasks}"
        fleet_results2 = client.results(ids)
        assert all(r.result is not None for r in fleet_results2)
        print(f"fleet-smoke: all {len(ids)} task(s) done after kill "
              f"({requeues} requeue(s)) -- work-stealing ok")

        # -- 3. a small campaign over the same broker ---------------------
        res = run_campaign(
            client, "coaxial-4x", "calm_policy=calm_50,calm_90;cxl=x8,asym",
            ["mcf"], objective="ipc", ops0=300, eta=2, max_rungs=2,
            timeout_s=SETTLE_BUDGET_S)
        assert res.winner.base == "coaxial-4x", res.winner
        assert res.total_jobs >= 6, res.total_jobs
        print(f"fleet-smoke: campaign winner {res.winner.label()} "
              f"({res.total_jobs} job(s), {len(res.rungs)} rung(s))")

        # -- 4. drain and shut down ---------------------------------------
        client.drain()
        assert survivor.wait(timeout=EXIT_BUDGET_S) == 0
        broker.send_signal(signal.SIGTERM)
        assert broker.wait(timeout=EXIT_BUDGET_S) == 0
        print("fleet-smoke: clean shutdown (rc=0) -- PASS")
        return 0
    finally:
        stop_all(procs)
        shutil.rmtree(fleet_cache, ignore_errors=True)
        shutil.rmtree(pool_cache, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
