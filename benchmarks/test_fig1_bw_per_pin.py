"""Figure 1: bandwidth per processor pin, DDR vs PCIe generations.

Paper claim: PCIe delivers ~4x the bandwidth per pin of DDR today
(PCIe-5.0 vs DDR5-4800), with the gap growing across generations.
"""

from repro.analysis import format_table
from repro.area import bandwidth_per_pin_table, DDR_GENERATIONS, PCIE_GENERATIONS
from repro.area.pins import pcie_vs_ddr_gap


def build_fig1():
    table = bandwidth_per_pin_table("PCIe-1.0")
    gap = pcie_vs_ddr_gap("PCIe-5.0", "DDR5-4800")
    return table, gap


def test_fig1_bw_per_pin(run_once):
    table, gap = run_once(build_fig1)

    rows = [[g.name, g.year, g.bandwidth_gbps, g.pins, table[g.name]]
            for g in DDR_GENERATIONS + PCIE_GENERATIONS]
    print("\nFigure 1 — bandwidth per pin (normalized to PCIe-1.0):")
    print(format_table(["interface", "year", "GB/s", "pins", "norm BW/pin"], rows))
    print(f"PCIe-5.0 vs DDR5-4800 gap: {gap:.2f}x (paper: ~4x)")

    assert 3.0 < gap < 5.5
    # The gap grows with newer PCIe generations (paper: ~8x by 2025).
    assert table["PCIe-6.0"] > table["PCIe-5.0"] > table["DDR5-4800"]
