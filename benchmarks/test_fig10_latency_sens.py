"""Figure 10: sensitivity to the CXL interface latency premium.

Paper claims: at a pessimistic 70 ns premium COAXIAL still delivers 1.26x
(down from 1.39x at 50 ns) with more workloads losing; at an OMI-like
~10 ns premium the speedup would reach 1.71x with no losers (Section VII).
"""

import dataclasses

from conftest import bench_ops, bench_workloads

from repro.analysis import format_table, geomean
from repro.analysis.tables import run_suite
from repro.cxl.link import X8_CXL
from repro.system.config import baseline_config, coaxial_config


def _premium(port_latency_ns: float, tag: str):
    params = dataclasses.replace(X8_CXL, name=f"x8-{tag}",
                                 port_latency_ns=port_latency_ns)
    cfg = coaxial_config(cxl_params=params)
    return cfg.replace(name=f"coaxial-4x-{tag}")


def build_fig10():
    wls = bench_workloads()
    ops = bench_ops()
    base = run_suite(baseline_config(), wls, ops)
    # Port latency of 12.5/17.5/2 ns -> ~50/70/~10 ns total premium.
    lat50 = run_suite(_premium(12.5, "50ns"), wls, ops)
    lat70 = run_suite(_premium(17.5, "70ns"), wls, ops)
    lat10 = run_suite(_premium(2.0, "10ns"), wls, ops)
    return base, lat50, lat70, lat10


def test_fig10_latency_sens(run_once):
    base, lat50, lat70, lat10 = run_once(build_fig10)

    rows = []
    gms = {}
    losers = {}
    for tag, suite in (("50ns", lat50), ("70ns", lat70), ("10ns", lat10)):
        sps = {w: suite[w].speedup_over(base[w]) for w in base.results}
        gms[tag] = geomean(sps.values())
        losers[tag] = sum(1 for s in sps.values() if s < 1.0)
        for w, s in sps.items():
            rows.append([w, tag, s])
    print("\nFigure 10 — CXL latency premium sensitivity (speedup vs baseline):")
    print(format_table(["workload", "premium", "speedup"], rows))
    print(f"geomeans: 50ns={gms['50ns']:.2f} 70ns={gms['70ns']:.2f} "
          f"10ns={gms['10ns']:.2f} (paper: 1.39 / 1.26 / 1.71)")
    print(f"losers: 50ns={losers['50ns']} 70ns={losers['70ns']} "
          f"10ns={losers['10ns']} (paper: 7 / 10 / 0)")

    # Shape: monotone in the premium; 70 ns still clearly wins on average.
    assert gms["10ns"] > gms["50ns"] > gms["70ns"]
    assert gms["70ns"] > 1.0
    assert losers["70ns"] >= losers["50ns"] >= losers["10ns"]
