"""Figure 5: the paper's main result.

COAXIAL-4x vs the DDR baseline across the workload suite: per-workload
speedup (top), L2-miss latency breakdown (middle), and memory bandwidth
usage/utilization (bottom).

Paper claims: 1.39x mean speedup, up to 3x; a minority of low-traffic
workloads lose performance; average bandwidth *utilization* drops (54% ->
34%) despite higher absolute bandwidth use; queuing delay shrinks ~5x.
"""

from conftest import bench_ops, bench_workloads, parity_assert

from repro.analysis import format_table, geomean
from repro.analysis.tables import run_suite
from repro.system.config import baseline_config, coaxial_config


def build_fig5():
    wls = bench_workloads()
    ops = bench_ops()
    base = run_suite(baseline_config(), wls, ops)
    coax = run_suite(coaxial_config(), wls, ops)
    return base, coax


def test_fig5_main(run_once):
    base, coax = run_once(build_fig5)

    rows = []
    speedups = []
    for name in base.results:
        b, c = base[name], coax[name]
        sp = c.speedup_over(b)
        speedups.append(sp)
        rows.append([
            name, sp, b.avg_miss_latency, c.avg_miss_latency,
            b.avg_queuing, c.avg_queuing, c.avg_cxl,
            100 * b.bandwidth_utilization, 100 * c.bandwidth_utilization,
        ])
    print("\nFigure 5 — COAXIAL-4x vs DDR baseline:")
    print(format_table(
        ["workload", "speedup", "b misslat", "c misslat",
         "b queue", "c queue", "c cxl", "b util%", "c util%"], rows))

    gm = geomean(speedups)
    losers = sum(1 for s in speedups if s < 1.0)
    big = sum(1 for s in speedups if s > 1.5)
    bq = sum(r.avg_queuing for r in base.results.values()) / len(rows)
    cq = sum(r.avg_queuing for r in coax.results.values()) / len(rows)
    bu = sum(r.bandwidth_utilization for r in base.results.values()) / len(rows)
    cu = sum(r.bandwidth_utilization for r in coax.results.values()) / len(rows)
    print(f"geomean speedup {gm:.2f}x (paper 1.39x), max {max(speedups):.2f}x "
          f"(paper 3x), {losers} losers (paper 7/36), {big} above 1.5x")
    print(f"avg queuing {bq:.0f} -> {cq:.0f} ns (paper ~5x reduction); "
          f"avg utilization {100 * bu:.0f}% -> {100 * cu:.0f}% (paper 54% -> 34%)")

    # Shape assertions.
    assert gm > 1.15                       # clear mean win
    assert max(speedups) > 2.0             # streams gain dramatically
    assert 0 < losers < len(speedups) / 2  # a minority loses
    assert cq < bq / 2.5                   # queuing collapses
    assert cu < bu                         # utilization drops despite more traffic
    # Golden parity bands (goldens/parity.json via the registry).
    parity_assert("fig5.geomean_speedup.coaxial-4x", gm)
    parity_assert("fig5.queuing_reduction.coaxial-4x", bq / cq)
    parity_assert("fig5.bw_utilization.ddr-baseline", bu)
    parity_assert("fig5.bw_utilization.coaxial-4x", cu)
    total_b = sum(r.bandwidth_gbps for r in base.results.values())
    total_c = sum(r.bandwidth_gbps for r in coax.results.values())
    assert total_c > total_b               # absolute bandwidth use grows
