"""Extension: does COAXIAL survive a faster-DDR baseline?

A natural objection to the paper: DDR5 speed bins keep climbing, so maybe
a DDR5-6400 baseline closes the gap without CXL. This bench upgrades the
*baseline's* DDR speed while holding COAXIAL at DDR5-4800 devices. The
paper's pin argument predicts the answer: a 33% faster channel cannot
compensate for 4x fewer channels on bandwidth-bound workloads.
"""

from conftest import bench_ops

from repro.analysis import format_table, geomean
from repro.dram.timing import DDR5Timing
from repro.system.config import baseline_config, coaxial_config
from repro.system.sim import simulate
from repro.workloads import get_workload

WORKLOADS = ["stream-copy", "PageRank", "lbm", "gcc"]

DDR5_6400 = DDR5Timing(name="DDR5-6400", data_rate_mts=6400.0)


def _simulate_with_timing(cfg, timing, wl, ops):
    """Simulate with every DDR channel rebuilt at ``timing``.

    The config doesn't carry a timing field, so this helper patches the
    default used by DDRChannel construction via a config-level rebuild.
    """
    import repro.dram.timing as tmod
    orig = tmod.DDR5_4800
    tmod.DDR5_4800 = timing
    try:
        return simulate(cfg, wl, ops_per_core=ops)
    finally:
        tmod.DDR5_4800 = orig


def build_ext():
    ops = bench_ops()
    out = {}
    for w in WORKLOADS:
        wl = get_workload(w)
        out[("base4800", w)] = simulate(baseline_config(), wl, ops_per_core=ops)
        out[("base6400", w)] = _simulate_with_timing(
            baseline_config(name="ddr6400-baseline"), DDR5_6400, wl, ops)
        out[("coax", w)] = simulate(coaxial_config(), wl, ops_per_core=ops)
    return out


def test_ext_ddr_speed(run_once):
    res = run_once(build_ext)

    rows = []
    sp_over_4800 = []
    sp_over_6400 = []
    for w in WORKLOADS:
        b48 = res[("base4800", w)]
        b64 = res[("base6400", w)]
        cx = res[("coax", w)]
        sp_over_4800.append(cx.speedup_over(b48))
        sp_over_6400.append(cx.speedup_over(b64))
        rows.append([w, b48.ipc, b64.ipc, cx.ipc,
                     cx.speedup_over(b48), cx.speedup_over(b64)])
    print("\nExtension — COAXIAL vs faster-DDR baselines:")
    print(format_table(
        ["workload", "DDR5-4800 IPC", "DDR5-6400 IPC", "COAXIAL IPC",
         "vs 4800", "vs 6400"], rows))
    g48, g64 = geomean(sp_over_4800), geomean(sp_over_6400)
    print(f"geomean speedup: vs DDR5-4800 {g48:.2f}x, vs DDR5-6400 {g64:.2f}x")

    # Shape: the faster bin helps the baseline but cannot close a 4x
    # channel-count gap for this bandwidth-bound set.
    for w in WORKLOADS:
        assert res[("base6400", w)].ipc >= res[("base4800", w)].ipc * 0.95
    assert g64 > 1.0
    assert g64 < g48  # the gap narrows, it does not invert
