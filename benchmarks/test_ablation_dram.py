"""Ablation: DRAM controller design choices.

The reproduction calibrates two controller knobs against the paper's
Figure 2a: the FR-FCFS reordering window (SCAN_WINDOW = 4) and the
adaptive page policy's idle-close timeout (CLOSE_TIMEOUT = 45 ns). These
benches document the sensitivity of the load-latency curve to both, so
the calibration is reproducible and auditable.
"""

import pytest

import repro.dram.controller as ctrl
from repro.analysis import format_table
from repro.dram import LoadLatencyProbe


@pytest.fixture
def restore_knobs():
    win = ctrl._SubChannel.SCAN_WINDOW
    to = ctrl._SubChannel.CLOSE_TIMEOUT
    yield
    ctrl._SubChannel.SCAN_WINDOW = win
    ctrl._SubChannel.CLOSE_TIMEOUT = to


def sweep_window(windows=(2, 4, 16), load=0.55):
    out = {}
    for w in windows:
        ctrl._SubChannel.SCAN_WINDOW = w
        pt = LoadLatencyProbe(seed=5).measure(load, n_requests=1500, warmup=200)
        out[w] = pt
    return out


def sweep_close_timeout(timeouts=(0.0, 45.0, 1e9), load=0.45):
    out = {}
    for t in timeouts:
        ctrl._SubChannel.CLOSE_TIMEOUT = t
        pt = LoadLatencyProbe(seed=5).measure(load, n_requests=1500, warmup=200)
        out[t] = pt
    return out


def test_ablation_scan_window(run_once, restore_knobs):
    pts = run_once(sweep_window)
    rows = [[w, p.mean_latency, p.p90_latency, p.achieved_utilization]
            for w, p in pts.items()]
    print("\nAblation — FR-FCFS scan window at 55% load:")
    print(format_table(["window", "mean ns", "p90 ns", "achieved"], rows))

    # A wider window reorders more aggressively: latency must not increase.
    assert pts[16].mean_latency <= pts[2].mean_latency * 1.1
    # The calibrated window (4) keeps queuing meaningful (the paper's curve).
    assert pts[4].mean_latency >= pts[16].mean_latency * 0.9


def test_ablation_close_timeout(run_once, restore_knobs):
    pts = run_once(sweep_close_timeout)
    rows = [[("eager" if t == 0 else "open" if t > 1e6 else f"{t:.0f}ns"),
             p.mean_latency, p.p90_latency] for t, p in pts.items()]
    print("\nAblation — page-close idle timeout at 45% load (random traffic):")
    print(format_table(["policy", "mean ns", "p90 ns"], rows))

    vals = [p.mean_latency for p in pts.values()]
    # All three policies must be in the same regime (no pathological blowup),
    # and the calibrated timeout must be no worse than the extremes' best
    # by more than 25% (it exists to help closed-loop streams, not random).
    assert max(vals) < 4 * min(vals)
    assert pts[45.0].mean_latency < min(vals) * 1.25
