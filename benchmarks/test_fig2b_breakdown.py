"""Figure 2b: baseline latency breakdown and bandwidth utilization.

Paper claims (DDR baseline, all 12 cores active): most workloads exceed
30% memory bandwidth utilization; queuing delay constitutes ~60% of the
average L2-miss latency across workloads; on-chip time is ~15%.
"""

from conftest import bench_ops, bench_workloads, parity_assert

from repro.analysis import format_table
from repro.analysis.tables import run_suite
from repro.system.config import baseline_config


def build_fig2b():
    return run_suite(baseline_config(), bench_workloads(), bench_ops())


def test_fig2b_breakdown(run_once):
    suite = run_once(build_fig2b)

    rows = []
    for name, r in suite.results.items():
        rows.append([name, r.avg_miss_latency, r.avg_onchip, r.avg_queuing,
                     r.avg_dram, 100 * r.bandwidth_utilization])
    print("\nFigure 2b — baseline L2-miss latency breakdown & utilization:")
    print(format_table(
        ["workload", "miss ns", "onchip", "queuing", "dram", "util %"], rows))

    results = list(suite.results.values())
    util_over_30 = sum(1 for r in results if r.bandwidth_utilization > 0.30)
    print(f"{util_over_30}/{len(results)} workloads above 30% utilization")
    q_frac = (sum(r.avg_queuing for r in results)
              / sum(r.avg_miss_latency for r in results))
    print(f"queuing fraction of miss latency: {100 * q_frac:.0f}% (paper: ~60%)")

    # Shape: most workloads load the channel; queuing dominates on average.
    assert util_over_30 >= len(results) * 0.6
    assert q_frac > 0.35
    # Golden parity band for the per-workload mean queuing share.
    shares = [r.avg_queuing / r.avg_miss_latency
              for r in results if r.avg_miss_latency > 0]
    parity_assert("fig2b.queuing_share.ddr-baseline",
                  sum(shares) / len(shares))
    # Queuing exceeds DRAM service time for the bandwidth-hungry half.
    heavy = [r for r in results if r.bandwidth_utilization > 0.5]
    assert heavy and all(r.avg_queuing > r.avg_dram for r in heavy)
