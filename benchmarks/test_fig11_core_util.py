"""Figure 11: sensitivity to server (core) utilization.

Paper claims: with a single active core COAXIAL loses ~27% on average
(the latency premium is naked); at 33% utilization most slowdowns vanish;
at 66% utilization (8 active cores, i.e. an 8:1 core:MC ratio) COAXIAL
already delivers 1.17x.
"""

from conftest import bench_ops

from repro.analysis import format_table, geomean
from repro.analysis.tables import run_suite
from repro.system.config import baseline_config, coaxial_config

CORE_COUNTS = (1, 4, 8, 12)
WORKLOADS = ["stream-copy", "PageRank", "lbm", "mcf", "gcc", "kmeans"]


def build_fig11():
    ops = bench_ops()
    out = {}
    for n in CORE_COUNTS:
        base = run_suite(baseline_config(active_cores=n), WORKLOADS, ops)
        coax = run_suite(coaxial_config(active_cores=n), WORKLOADS, ops)
        out[n] = (base, coax)
    return out


def test_fig11_core_util(run_once):
    results = run_once(build_fig11)

    rows = []
    gm = {}
    for n, (base, coax) in results.items():
        sps = {w: coax[w].speedup_over(base[w]) for w in base.results}
        gm[n] = geomean(sps.values())
        for w, s in sps.items():
            rows.append([w, n, s])
    print("\nFigure 11 — speedup vs active cores (normalized per core count):")
    print(format_table(["workload", "active cores", "speedup"], rows))
    print("geomeans: " + "  ".join(f"{n} cores={gm[n]:.2f}" for n in CORE_COUNTS)
          + "  (paper: 1 core ~0.73, 8 cores 1.17, 12 cores 1.39)")

    # Shape: monotone improvement with utilization; single core loses,
    # 8+ cores win.
    assert gm[1] < 1.0
    assert gm[1] < gm[4] < gm[8] <= gm[12] * 1.05
    assert gm[8] > 1.0
